#!/usr/bin/env bash
# Runs the reproduction benches at smoke scale and archives the numbers
# under bench/results/<UTC timestamp>/ so the perf trajectory is measurable
# PR-over-PR. Raw stdout is kept per bench next to parsed JSON summaries.
#
# Usage: tools/run_benches.sh [build_dir] [results_root]
#
# Scale knobs (exported only if unset, so callers/CI can override):
#   SPARQLSIM_LUBM_UNIVERSITIES (default 2)
#   SPARQLSIM_DBPEDIA_SCALE     (default 1)
#   SPARQLSIM_BENCH_REPS        (default 2)
#   SPARQLSIM_PARALLEL_QUERIES  (default 6)
#   SPARQLSIM_SERVICE_PUBLISHES (default 8; snapshot-churn publications)
#   SPARQLSIM_DB                optional ingested .gdb all benches run on
#   SPARQLSIM_PUBLISH_SUMMARY   1 to also copy the consolidated summary to
#                               the committed repo-root BENCH_summary.json
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
RESULTS_ROOT="${2:-$REPO_ROOT/bench/results}"
STAMP="$(date -u +%Y%m%dT%H%M%SZ)"
RUN_DIR="$RESULTS_ROOT/$STAMP"

REQUIRED_BENCHES=(bench_table2 bench_table3 bench_ablation bench_parallel
                  bench_service bench_standing bench_outofcore)

# A build dir cached with SPARQLSIM_BUILD_BENCH=OFF used to make this
# script a silent no-op (every bench "not built, skipping", empty summary).
# Detect the stale cache, reconfigure with benches on, build what is
# missing, and fail loudly if a required bench still cannot be produced.
ensure_benches_built() {
  local missing=()
  local b
  for b in "${REQUIRED_BENCHES[@]}"; do
    [[ -x "$BUILD_DIR/$b" ]] || missing+=("$b")
  done
  ((${#missing[@]})) || return 0

  local cache="$BUILD_DIR/CMakeCache.txt"
  if [[ ! -f "$cache" ]]; then
    echo "[run_benches] $BUILD_DIR is not configured; configuring with" \
         "SPARQLSIM_BUILD_BENCH=ON" >&2
    cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DSPARQLSIM_BUILD_BENCH=ON >&2
  elif grep -q '^SPARQLSIM_BUILD_BENCH:BOOL=OFF$' "$cache"; then
    echo "[run_benches] stale cache: SPARQLSIM_BUILD_BENCH=OFF in" \
         "$BUILD_DIR; reconfiguring" >&2
    cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DSPARQLSIM_BUILD_BENCH=ON >&2
  fi
  echo "[run_benches] building missing benches: ${missing[*]}" >&2
  cmake --build "$BUILD_DIR" -j --target "${missing[@]}" >&2

  for b in "${REQUIRED_BENCHES[@]}"; do
    if [[ ! -x "$BUILD_DIR/$b" ]]; then
      echo "[run_benches] ERROR: $b still missing after reconfigure" >&2
      exit 1
    fi
  done
}
ensure_benches_built

mkdir -p "$RUN_DIR"

export SPARQLSIM_LUBM_UNIVERSITIES="${SPARQLSIM_LUBM_UNIVERSITIES:-2}"
export SPARQLSIM_DBPEDIA_SCALE="${SPARQLSIM_DBPEDIA_SCALE:-1}"
export SPARQLSIM_BENCH_REPS="${SPARQLSIM_BENCH_REPS:-2}"
export SPARQLSIM_PARALLEL_QUERIES="${SPARQLSIM_PARALLEL_QUERIES:-6}"
export SPARQLSIM_SERVICE_PUBLISHES="${SPARQLSIM_SERVICE_PUBLISHES:-8}"

run_bench() {
  local name="$1"
  local bin="$BUILD_DIR/$name"
  if [[ ! -x "$bin" ]]; then
    # ensure_benches_built guarantees the required set; anything missing
    # here is a hard failure, not a silent skip.
    echo "[run_benches] ERROR: $name not built" >&2
    exit 1
  fi
  echo "[run_benches] running $name ..." >&2
  local t0 t1
  t0=$(date +%s.%N)
  "$bin" >"$RUN_DIR/$name.txt" 2>"$RUN_DIR/$name.log"
  t1=$(date +%s.%N)
  echo "$name $(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')" \
    >>"$RUN_DIR/wallclock.txt"
}

# Table 2/3 + ablation smoke runs, plus the thread-scaling and service
# throughput benches (which write their own structured JSON).
run_bench bench_table2
run_bench bench_table3
SPARQLSIM_BENCH_JSON="$RUN_DIR/bench_ablation.json" run_bench bench_ablation
SPARQLSIM_BENCH_JSON="$RUN_DIR/bench_parallel.json" run_bench bench_parallel
SPARQLSIM_BENCH_JSON="$RUN_DIR/bench_service.json" run_bench bench_service
SPARQLSIM_BENCH_JSON="$RUN_DIR/bench_standing.json" run_bench bench_standing
SPARQLSIM_BENCH_JSON="$RUN_DIR/bench_outofcore.json" run_bench bench_outofcore

# Parse the bench tables' "total" rows into one summary JSON. awk fields:
# bench_table2: total t_soi t_ma speedup / bench_table3 has its own shape —
# keep it generic: archive every line starting with "total".
{
  echo '{'
  echo "  \"timestamp\": \"$STAMP\","
  echo "  \"git_rev\": \"$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"scale\": {"
  echo "    \"lubm_universities\": $SPARQLSIM_LUBM_UNIVERSITIES,"
  echo "    \"dbpedia_scale\": $SPARQLSIM_DBPEDIA_SCALE,"
  echo "    \"reps\": $SPARQLSIM_BENCH_REPS"
  echo "  },"
  echo '  "totals": {'
  first=1
  for name in bench_table2 bench_table3; do
    [[ -f "$RUN_DIR/$name.txt" ]] || continue
    total_line=$(grep -m1 '^total' "$RUN_DIR/$name.txt" || true)
    [[ -n "$total_line" ]] || continue
    soi=$(echo "$total_line" | awk '{print $2}')
    other=$(echo "$total_line" | awk '{print $3}')
    [[ $first -eq 1 ]] || echo ','
    first=0
    printf '    "%s": {"t_sparqlsim": %s, "t_baseline": %s}' \
      "$name" "${soi:-0}" "${other:-0}"
  done
  echo ''
  echo '  },'
  echo "  \"wallclock_seconds\": {"
  if [[ -f "$RUN_DIR/wallclock.txt" ]]; then
    awk '{printf "%s    \"%s\": %s", (NR==1 ? "" : ",\n"), $1, $2} END {print ""}' \
      "$RUN_DIR/wallclock.txt"
  fi
  echo '  },'
  # The benches honor SPARQLSIM_DB (real ingested database) — record which
  # data the numbers were measured on.
  echo "  \"db\": \"${SPARQLSIM_DB:-synthetic}\","
  # Structured per-bench JSON, embedded verbatim: the ablation block carries
  # the incremental-evaluation on/off comparison (seconds + per-variant
  # rounds/updates/delta counters), parallel the thread scaling, service the
  # throughput numbers across the worker, shard-count, and snapshot-churn
  # axes (samples[].shards + the churn object).
  echo '  "ablation":'
  cat "$RUN_DIR/bench_ablation.json"
  echo '  ,"parallel":'
  cat "$RUN_DIR/bench_parallel.json"
  echo '  ,"service":'
  cat "$RUN_DIR/bench_service.json"
  # standing: incremental maintenance vs cold recompute over a small-delta
  # update stream (headline.speedup is the maintain-vs-recompute ratio).
  echo '  ,"standing":'
  cat "$RUN_DIR/bench_standing.json"
  # outofcore: SQSIMDB2 cold-open + first-query latency of the lazy
  # mmap-backed loader vs the eager v1/v2 paths, with backing counters
  # (resident/materializations/evictions) per variant.
  echo '  ,"outofcore":'
  cat "$RUN_DIR/bench_outofcore.json"
  # service_baseline: the committed pre-scratch-pool bench_service run
  # (HEAD before the pooled-scratch change), embedded so the summary
  # carries both sides of the steady-state comparison.
  if [[ -f "$REPO_ROOT/bench/baseline/service_head_4e24ab4.json" ]]; then
    echo '  ,"service_baseline":'
    cat "$REPO_ROOT/bench/baseline/service_head_4e24ab4.json"
  fi
  echo '}'
} >"$RUN_DIR/summary.json"

# Publish the consolidated summary at the repo root (committed, unlike the
# gitignored bench/results/ archive) so the perf trajectory is tracked
# PR-over-PR. Opt-in (SPARQLSIM_PUBLISH_SUMMARY=1): a casual smoke run must
# not silently overwrite the committed trajectory artifact with tiny-scale
# numbers.
if [[ "${SPARQLSIM_PUBLISH_SUMMARY:-0}" == "1" ]]; then
  cp "$RUN_DIR/summary.json" "$REPO_ROOT/BENCH_summary.json"
  echo "[run_benches] consolidated summary published to" \
       "$REPO_ROOT/BENCH_summary.json" >&2
else
  echo "[run_benches] SPARQLSIM_PUBLISH_SUMMARY!=1: leaving the committed" \
       "BENCH_summary.json untouched (summary at $RUN_DIR/summary.json)" >&2
fi

echo "[run_benches] results archived in $RUN_DIR" >&2
ls -l "$RUN_DIR" >&2
