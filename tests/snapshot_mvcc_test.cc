// MVCC serving contract: immutable copy-on-write snapshots, readers
// pinned to their admission version while publishers race past them,
// cache GC against the live-generation set, and retired-version slab
// reclamation (the stale-snapshot leak regression). The racing suites run
// under TSan in CI; the reclamation suite is ASan-visible.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "datagen/random_graphs.h"
#include "graph/graph_database.h"
#include "sim/query_service.h"
#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "sim/soi_cache.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace sparqlsim::sim {
namespace {

sparql::Query ParseQuery(const std::string& text) {
  auto parsed = sparql::Parser::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error_message() << " in " << text;
  return std::move(parsed).value();
}

// ---------------------------------------------------------------------------
// Copy-on-write versioning on GraphDatabase itself
// ---------------------------------------------------------------------------

TEST(CowSnapshotTest, UntouchedPredicateSlabsAreSharedByAddress) {
  graph::GraphDatabaseBuilder builder;
  for (int i = 0; i < 70; ++i) builder.InternNode("n" + std::to_string(i));
  builder.InternPredicate("p0");
  builder.InternPredicate("p1");
  for (int i = 0; i + 1 < 70; ++i) {
    ASSERT_TRUE(
        builder
            .AddTriple("n" + std::to_string(i), i % 2 ? "p1" : "p0",
                       "n" + std::to_string(i + 1))
            .ok());
  }
  graph::GraphDatabase base = std::move(builder).Build();

  const uint32_t p0 = *base.predicates().Lookup("p0");
  const uint32_t p1 = *base.predicates().Lookup("p1");
  const uint32_t n0 = *base.nodes().Lookup("n0");
  const uint32_t n5 = *base.nodes().Lookup("n5");

  // Snapshot: pure pointer copies, same generation, same slab objects.
  std::shared_ptr<const graph::GraphDatabase> snap = base.Snapshot();
  EXPECT_EQ(snap->generation(), base.generation());
  EXPECT_EQ(&snap->Forward(p0), &base.Forward(p0));
  EXPECT_EQ(&snap->Forward(p1), &base.Forward(p1));

  // Adding a p1 edge rebuilds only the p1 slab; p0 is shared by address.
  const graph::Triple added{n0, p1, n5};
  graph::GraphDatabase next = base.WithTriplesAdded({&added, 1});
  EXPECT_NE(next.generation(), base.generation());
  EXPECT_EQ(&next.Forward(p0), &base.Forward(p0));
  EXPECT_NE(&next.Forward(p1), &base.Forward(p1));
  EXPECT_EQ(next.NumTriples(), base.NumTriples() + 1);
  // The source version is untouched (snapshot isolation).
  EXPECT_FALSE(base.Forward(p1).Test(n0, n5));
  EXPECT_TRUE(next.Forward(p1).Test(n0, n5));
}

TEST(CowSnapshotTest, NoOpPublishesKeepTheGeneration) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 80;
  config.num_edges = 300;
  config.seed = 5;
  graph::GraphDatabase base = datagen::MakeRandomDatabase(config);

  // Keeping everything is content-identity: same generation, all slabs
  // shared, so caches keyed on the generation stay warm.
  std::vector<graph::Triple> all = base.AllTriples();
  graph::GraphDatabase same = base.Restrict(all);
  EXPECT_EQ(same.generation(), base.generation());
  for (uint32_t p = 0; p < base.NumPredicates(); ++p) {
    EXPECT_EQ(&same.Forward(p), &base.Forward(p)) << "p" << p;
  }

  // Re-adding an existing triple is also a no-op.
  graph::GraphDatabase dup = base.WithTriplesAdded({all.data(), 1});
  EXPECT_EQ(dup.generation(), base.generation());
}

// ---------------------------------------------------------------------------
// Cache GC against the live-generation set
// ---------------------------------------------------------------------------

TEST(SnapshotCacheGcTest, LiveSetEvictionIsExact) {
  SoiCache cache;
  graph::Graph pattern = datagen::MakeRandomPattern(4, 2, 3, 11);
  Soi soi = BuildSoiFromGraph(pattern);
  cache.InsertSoi(/*generation=*/10, "q", Soi(soi));
  cache.InsertSoi(/*generation=*/20, "q", Soi(soi));
  cache.InsertSoi(/*generation=*/30, "q", Soi(soi));
  ASSERT_EQ(cache.NumSois(), 3u);

  // Generations 10 and 30 are still pinned; only 20 is unreachable. The
  // raw newest-integer sweep would wrongly drop 10 here.
  const uint64_t live[] = {10, 30};
  EXPECT_EQ(cache.EvictStaleGenerations(live), 1u);
  EXPECT_EQ(cache.NumSois(), 2u);
  EXPECT_NE(cache.FindSoi(10, "q"), nullptr);
  EXPECT_EQ(cache.FindSoi(20, "q"), nullptr);
  EXPECT_NE(cache.FindSoi(30, "q"), nullptr);
  EXPECT_EQ(cache.stats().generation_evictions, 1u);

  // Once 10 drains too, the next sweep reclaims it.
  const uint64_t live2[] = {30};
  EXPECT_EQ(cache.EvictStaleGenerations({live2, 1}), 1u);
  EXPECT_EQ(cache.NumSois(), 1u);
}

// ---------------------------------------------------------------------------
// QueryService: pinned readers, retired-version reclamation, deadlines
// ---------------------------------------------------------------------------

std::vector<graph::Triple> RandomNewTriples(
    const graph::GraphDatabase& db, util::Rng& rng, size_t count) {
  std::vector<graph::Triple> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back({static_cast<uint32_t>(rng.NextBounded(db.NumNodes())),
                   static_cast<uint32_t>(rng.NextBounded(db.NumPredicates())),
                   static_cast<uint32_t>(rng.NextBounded(db.NumNodes()))});
  }
  return out;
}

TEST(SnapshotMvccTest, InFlightQueryPinsItsVersionUntilCompletion) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 100;
  config.num_edges = 400;
  config.seed = 3;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  std::mutex hook_mutex;
  std::condition_variable hook_cv;
  bool release = false;
  std::atomic<size_t> hook_calls{0};
  QueryServiceOptions options;
  options.num_workers = 2;
  options.solve_hook = [&] {
    if (hook_calls.fetch_add(1) != 0) return;  // only the first query parks
    std::unique_lock<std::mutex> lock(hook_mutex);
    hook_cv.wait(lock, [&] { return release; });
  };
  QueryService service(&db, options);

  const uint64_t first_generation = service.CurrentGeneration();
  std::weak_ptr<const graph::GraphDatabase> first_version;
  first_version = service.CurrentSnapshot();
  ASSERT_FALSE(first_version.expired());

  // Park a query on the first version, then publish past it.
  auto future = service.Submit(
      ParseQuery("SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . }"));
  while (hook_calls.load() == 0) std::this_thread::yield();

  util::Rng rng(17);
  std::vector<graph::Triple> added = RandomNewTriples(db, rng, 25);
  const uint64_t second_generation = service.IngestTriples(added);
  EXPECT_NE(second_generation, first_generation);
  EXPECT_EQ(service.CurrentGeneration(), second_generation);

  // The reader still pins the retired version: two snapshots live, and
  // the first version's slabs must not have been reclaimed.
  EXPECT_EQ(service.stats().snapshots_live, 2u);
  EXPECT_FALSE(first_version.expired());

  {
    std::lock_guard<std::mutex> lock(hook_mutex);
    release = true;
  }
  hook_cv.notify_all();
  PruneReport report = future.get();
  EXPECT_EQ(report.snapshot_generation, first_generation);
  service.Drain();

  // Leak regression: completion retires the pin, the sweep drops the dead
  // version, and its snapshot (slabs included) is actually freed — the
  // weak_ptr is the witness.
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.snapshots_live, 1u);
  EXPECT_EQ(stats.peak_snapshots_live, 2u);
  EXPECT_EQ(stats.snapshots_published, 1u);
  EXPECT_TRUE(first_version.expired());
}

TEST(SnapshotMvccTest, CacheRetainsOnlyLiveGenerationsAcrossPublishes) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 90;
  config.num_edges = 350;
  config.seed = 7;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.solver.cache_sois = true;
  options.solver.cache_solutions = true;
  QueryService service(&db, options);

  const sparql::Query query =
      ParseQuery("SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . }");
  service.Submit(query.Clone()).get();
  service.Drain();
  EXPECT_EQ(service.stats().cached_sois, 1u);

  // Publish a content-changing version, solve the same pattern on it:
  // the old generation has no pin left, so its entry must be gone and
  // exactly the new generation's entry resident.
  util::Rng rng(23);
  std::vector<graph::Triple> added = RandomNewTriples(db, rng, 30);
  service.IngestTriples(added);
  service.Submit(query.Clone()).get();
  service.Drain();
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.cached_sois, 1u);
  EXPECT_EQ(stats.snapshots_live, 1u);

  // A no-op publish keeps generation and therefore the warm entry.
  std::vector<graph::Triple> all = service.CurrentSnapshot()->AllTriples();
  const uint64_t generation = service.CurrentGeneration();
  EXPECT_EQ(service.ApplyRestrict(all), generation);
  EXPECT_EQ(service.stats().snapshots_published, 1u);
  service.Submit(query.Clone()).get();
  service.Drain();
  EXPECT_EQ(service.stats().cached_sois, 1u);
  EXPECT_GT(service.stats().cache.soi_hits, 0u);
}

TEST(SnapshotMvccTest, DeadlineExpiryTruncatesWithoutPoisoningTheCache) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 120;
  config.num_edges = 500;
  config.seed = 19;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  QueryServiceOptions options;
  options.num_workers = 2;
  options.solver.cache_sois = true;
  options.solver.cache_solutions = true;
  QueryService service(&db, options);
  const sparql::Query query = ParseQuery(
      "SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . ?c <p2> ?a . }");

  SubmitOptions expired;
  expired.deadline = std::chrono::milliseconds(0);
  PruneReport cut = service.Submit(query.Clone(), expired).get();
  EXPECT_TRUE(cut.truncated);
  EXPECT_GE(service.stats().deadline_truncated, 1u);

  // The truncated run must not have seeded the solution cache: an
  // unbudgeted rerun reaches the true fixpoint.
  PruneReport full = service.Submit(query.Clone()).get();
  EXPECT_FALSE(full.truncated);
  SimEngine reference(&db, options.solver);
  PruneReport want = reference.Prune(query);
  EXPECT_EQ(full.kept_triples, want.kept_triples);
  // Soundness of the truncated report: superset of the fixpoint.
  for (const graph::Triple& t : want.kept_triples) {
    EXPECT_TRUE(std::find(cut.kept_triples.begin(), cut.kept_triples.end(),
                          t) != cut.kept_triples.end());
  }
}

// The TSan-load-bearing test: readers race one publisher; every report
// must be bit-identical to a sequential solve against the snapshot the
// query pinned, and publication must never block reader progress.
TEST(SnapshotMvccTest, RacingReadersMatchSequentialSolvesOnPinnedVersions) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 100;
  config.num_edges = 400;
  config.seed = 29;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  QueryServiceOptions options;
  options.num_workers = 4;
  options.queue_depth = 8;
  options.solver.cache_sois = true;
  options.solver.cache_solutions = true;
  QueryService service(&db, options);

  const std::vector<std::string> texts = {
      "SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . }",
      "SELECT * WHERE { ?a <p1> ?b . OPTIONAL { ?b <p2> ?c . } }",
      "SELECT * WHERE { { ?a <p0> ?b . } UNION { ?a <p2> ?b . } }",
      "SELECT * WHERE { ?a <p2> ?b . ?c <p0> ?b . }",
  };

  // Version ledger: generation -> pinned snapshot. The single publisher
  // records each version it publishes; holding the shared_ptrs keeps every
  // generation alive for the post-hoc differential check.
  std::mutex ledger_mutex;
  std::unordered_map<uint64_t, std::shared_ptr<const graph::GraphDatabase>>
      ledger;
  ledger.emplace(service.CurrentGeneration(), service.CurrentSnapshot());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    util::Rng rng(41);
    for (int round = 0; round < 12; ++round) {
      if (round % 3 == 2) {
        // Drop every 11th triple of the newest version.
        std::vector<graph::Triple> all =
            service.CurrentSnapshot()->AllTriples();
        std::vector<graph::Triple> kept;
        for (size_t i = 0; i < all.size(); ++i) {
          if (i % 11 != 0) kept.push_back(all[i]);
        }
        service.ApplyRestrict(kept);
      } else {
        std::vector<graph::Triple> added = RandomNewTriples(db, rng, 12);
        service.IngestTriples(added);
      }
      std::lock_guard<std::mutex> lock(ledger_mutex);
      ledger.emplace(service.CurrentGeneration(), service.CurrentSnapshot());
    }
    stop.store(true);
  });

  std::mutex results_mutex;
  std::vector<std::pair<size_t, PruneReport>> results;  // (text idx, report)
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      do {
        const size_t which = i % texts.size();
        PruneReport report = service.Submit(ParseQuery(texts[which])).get();
        std::lock_guard<std::mutex> lock(results_mutex);
        results.emplace_back(which, std::move(report));
        ++i;
      } while (!stop.load());
    });
  }
  publisher.join();
  for (std::thread& t : readers) t.join();
  service.Drain();

  ASSERT_GE(results.size(), 3u);
  for (const auto& [which, report] : results) {
    // With a single publisher, CurrentSnapshot() right after each publish
    // is exactly the published version, so every generation a reader could
    // have pinned is in the ledger.
    auto it = ledger.find(report.snapshot_generation);
    ASSERT_NE(it, ledger.end()) << report.snapshot_generation;
    SimEngine engine(it->second.get(), options.solver);
    PruneReport want = engine.Prune(ParseQuery(texts[which]));
    const std::string context = "query " + std::to_string(which) +
                                " on generation " +
                                std::to_string(report.snapshot_generation);
    EXPECT_FALSE(report.truncated) << context;
    EXPECT_EQ(report.kept_triples, want.kept_triples) << context;
    EXPECT_EQ(report.num_branches, want.num_branches) << context;
    ASSERT_EQ(report.var_candidates.size(), want.var_candidates.size())
        << context;
    for (const auto& [var, bits] : want.var_candidates) {
      auto found = report.var_candidates.find(var);
      ASSERT_NE(found, report.var_candidates.end()) << context << " ?" << var;
      EXPECT_EQ(found->second, bits) << context << " ?" << var;
    }
  }
}

// ---------------------------------------------------------------------------
// Standing-query subscriptions under concurrency (TSan-load-bearing):
// a mutator streams insert/delete batches while subscribers drain reports
// and ad-hoc readers race both. The post-hoc ledger replay holds every
// delivered report bit-identical to a cold solve on the generation it
// names, with no generation skipped or reordered.
// ---------------------------------------------------------------------------

TEST(SnapshotMvccTest, SubscribersReceiveExactReportsPerGenerationUnderRace) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 80;
  config.num_edges = 320;
  config.seed = 53;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  QueryServiceOptions options;
  options.num_workers = 2;
  QueryService service(&db, options);

  const std::vector<std::string> texts = {
      "SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?c . }",
      "SELECT * WHERE { { ?a <p0> ?b . } UNION { ?a <p2> ?b . } "
      "OPTIONAL { ?b <p1> ?c . } }",
  };
  std::vector<std::shared_ptr<QueryService::Subscription>> subs;
  for (const std::string& text : texts) {
    subs.push_back(service.Subscribe(ParseQuery(text)));
  }
  const uint64_t initial_generation = service.CurrentGeneration();

  // Version ledger, written only by the single mutator: the generation
  // sequence of its publications, each with a pinned snapshot.
  std::unordered_map<uint64_t, std::shared_ptr<const graph::GraphDatabase>>
      ledger;
  std::vector<uint64_t> published_order;
  ledger.emplace(initial_generation, service.CurrentSnapshot());

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    util::Rng rng(59);
    for (int round = 0; round < 8; ++round) {
      if (round % 2 == 0) {
        service.IngestTriples(RandomNewTriples(db, rng, 15));
      } else {
        std::vector<graph::Triple> all =
            service.CurrentSnapshot()->AllTriples();
        std::vector<graph::Triple> victims;
        for (size_t i = 0; i < all.size(); i += 9) victims.push_back(all[i]);
        service.DeleteTriples(victims);
      }
      published_order.push_back(service.CurrentGeneration());
      ledger.emplace(service.CurrentGeneration(), service.CurrentSnapshot());
    }
    stop.store(true);
  });

  // Racing consumers: one drains subscription reports mid-stream, others
  // submit ad-hoc queries (their admissions interleave with publishes).
  std::vector<std::vector<PruneReport>> drained(subs.size());
  std::thread drainer([&] {
    while (!stop.load()) {
      for (size_t s = 0; s < subs.size(); ++s) {
        std::vector<PruneReport> got = subs[s]->TakeReports();
        drained[s].insert(drained[s].end(),
                          std::make_move_iterator(got.begin()),
                          std::make_move_iterator(got.end()));
      }
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    size_t i = 0;
    do {
      service.Submit(ParseQuery(texts[i++ % texts.size()])).get();
    } while (!stop.load());
  });
  mutator.join();
  drainer.join();
  reader.join();
  service.Drain();

  for (size_t s = 0; s < subs.size(); ++s) {
    std::vector<PruneReport> tail = subs[s]->TakeReports();
    drained[s].insert(drained[s].end(),
                      std::make_move_iterator(tail.begin()),
                      std::make_move_iterator(tail.end()));
  }

  // Every writer call delivered exactly one report per subscription, in
  // publish order, after the registration-time cold report.
  std::vector<uint64_t> expected_generations;
  expected_generations.push_back(initial_generation);
  expected_generations.insert(expected_generations.end(),
                              published_order.begin(), published_order.end());
  for (size_t s = 0; s < subs.size(); ++s) {
    ASSERT_EQ(drained[s].size(), expected_generations.size()) << "sub " << s;
    const sparql::Query query = ParseQuery(texts[s]);
    SolverOptions plain;
    plain.num_threads = 1;
    plain.cache_sois = false;
    plain.cache_solutions = false;
    for (size_t i = 0; i < drained[s].size(); ++i) {
      const PruneReport& report = drained[s][i];
      EXPECT_EQ(report.snapshot_generation, expected_generations[i])
          << "sub " << s << " report " << i;
      auto snapshot = ledger.find(report.snapshot_generation);
      ASSERT_NE(snapshot, ledger.end()) << report.snapshot_generation;
      SimEngine cold(snapshot->second.get(), plain);
      PruneReport want = cold.Prune(query);
      const std::string context = "sub " + std::to_string(s) +
                                  " generation " +
                                  std::to_string(report.snapshot_generation);
      EXPECT_EQ(report.kept_triples, want.kept_triples) << context;
      EXPECT_EQ(report.var_candidates, want.var_candidates) << context;
    }
  }

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.subscriptions, subs.size());
  EXPECT_EQ(stats.subscription_reports,
            subs.size() * expected_generations.size());

  // Dropping the handles unsubscribes at the next publish.
  subs.clear();
  util::Rng rng(61);
  std::vector<graph::Triple> more = RandomNewTriples(db, rng, 5);
  service.IngestTriples(more);
  EXPECT_EQ(service.stats().subscriptions, 0u);
}

}  // namespace
}  // namespace sparqlsim::sim
