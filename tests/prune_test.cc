#include "sim/pruner.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "engine/evaluator.h"
#include "engine/required_triples.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace sparqlsim::sim {
namespace {

using engine::Evaluator;
using engine::kUnbound;
using engine::SolutionSet;
using sparql::Parser;

sparql::Query Q(const char* text) {
  auto r = Parser::Parse(text);
  EXPECT_TRUE(r.ok()) << r.error_message();
  return std::move(r).value();
}

/// Order-independent materialization of a solution set.
std::set<std::vector<uint32_t>> RowSet(const SolutionSet& rows) {
  std::set<std::vector<uint32_t>> out;
  // Align columns by sorted variable order so schemas compare equal.
  std::vector<std::string> vars = rows.vars();
  std::sort(vars.begin(), vars.end());
  for (size_t i = 0; i < rows.NumRows(); ++i) {
    std::vector<uint32_t> row;
    for (const std::string& v : vars) row.push_back(rows.Value(i, rows.IndexOf(v)));
    out.insert(std::move(row));
  }
  return out;
}

/// The practical soundness property behind Tables 4/5: evaluating on the
/// pruned database returns exactly the full-database result set.
void ExpectPrunePreservesResults(const graph::GraphDatabase& db,
                                 const sparql::Query& query) {
  Evaluator full_eval(&db);
  SolutionSet full = full_eval.Evaluate(query);

  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(query);
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  Evaluator pruned_eval(&pruned);
  SolutionSet on_pruned = pruned_eval.Evaluate(query);

  EXPECT_EQ(RowSet(full), RowSet(on_pruned));
  EXPECT_LE(pruned.NumTriples(), db.NumTriples());
}

/// Theorem 1/2: every match binding (v, o) lies in the candidate set the
/// prune reports for v.
void ExpectCandidatesCoverMatches(const graph::GraphDatabase& db,
                                  const sparql::Query& query) {
  Evaluator eval(&db);
  SolutionSet rows = eval.EvaluatePattern(*query.where);
  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(query);

  for (size_t i = 0; i < rows.NumRows(); ++i) {
    for (size_t c = 0; c < rows.Arity(); ++c) {
      uint32_t value = rows.Row(i)[c];
      if (value == kUnbound) continue;
      const auto& candidates = report.var_candidates.at(rows.vars()[c]);
      EXPECT_TRUE(candidates.Test(value))
          << "match value " << db.nodes().Name(value) << " for ?"
          << rows.vars()[c] << " missing from dual simulation";
    }
  }
}

TEST(PruneTest, MovieX1KeepsOnlyRelevantTriples) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  sparql::Query q = Q(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "?director <worked_with> ?coworker . }");
  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  // Exactly the 4 triples of the two bold subgraphs of Fig. 1(a).
  EXPECT_EQ(report.kept_triples.size(), 4u);
  ExpectPrunePreservesResults(db, q);
  ExpectCandidatesCoverMatches(db, q);
}

TEST(PruneTest, MovieX2OptionalKeepsDirectorsWithoutCoworkers) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  sparql::Query q = Q(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "OPTIONAL { ?director <worked_with> ?coworker . } }");
  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  // All four directed triples survive (optional must not constrain the
  // mandatory part), plus the two witnessed worked_with triples.
  EXPECT_EQ(report.kept_triples.size(), 6u);
  ExpectPrunePreservesResults(db, q);
  ExpectCandidatesCoverMatches(db, q);
}

TEST(PruneTest, EmptyQueryPrunesEverything) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  sparql::Query q = Q("SELECT * WHERE { ?x <directed> <NoSuchMovie> . }");
  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  EXPECT_TRUE(report.kept_triples.empty());
}

TEST(PruneTest, UnionBranchesPruneIndependently) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  sparql::Query q = Q(
      "SELECT * WHERE { { ?m <awarded> <Oscar> . } UNION "
      "{ ?m <awarded> <BAFTA Awards> . } }");
  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  EXPECT_EQ(report.num_branches, 2u);
  EXPECT_EQ(report.kept_triples.size(), 3u);
  ExpectPrunePreservesResults(db, q);
}

TEST(PruneTest, PruneNeverBelowRequiredTriples) {
  // Sound pruning keeps a superset of the required triples (Table 3's
  // invariant: tripl. aft. pruning >= req. triples).
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  for (const char* text : {
           "SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }",
           "SELECT * WHERE { ?d <directed> ?m . OPTIONAL { ?m <awarded> "
           "?a . } }",
           "SELECT * WHERE { ?p <born_in> ?c . ?c <population> ?n . }",
       }) {
    sparql::Query q = Q(text);
    SparqlSimProcessor processor(&db);
    PruneReport report = processor.Prune(q);
    Evaluator eval(&db);
    auto required = engine::CollectRequiredTriples(q, db, eval);
    std::set<graph::Triple> kept(report.kept_triples.begin(),
                                 report.kept_triples.end());
    for (const graph::Triple& t : required) {
      EXPECT_TRUE(kept.count(t)) << text;
    }
  }
}

/// Property sweep: on random databases and randomly composed queries,
/// pruning preserves result sets and candidates cover matches.
class PruneSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PruneSoundness, RandomQueriesStaySound) {
  uint64_t seed = GetParam();
  util::Rng rng(seed);
  datagen::RandomGraphConfig config;
  config.num_nodes = 40 + rng.NextBounded(40);
  config.num_edges = 200 + rng.NextBounded(300);
  config.num_labels = 2 + rng.NextBounded(3);
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  auto random_var = [&](int max_vars) {
    return "?v" + std::to_string(rng.NextBounded(max_vars));
  };
  auto random_triple = [&](int max_vars) {
    std::string p = "<p" + std::to_string(rng.NextBounded(config.num_labels)) +
                    ">";
    return random_var(max_vars) + " " + p + " " + random_var(max_vars) + " .";
  };

  // Compose: mandatory BGP of 2-3 triples + optional block + maybe union.
  std::string text = "SELECT * WHERE { ";
  size_t mandatory = 2 + rng.NextBounded(2);
  for (size_t i = 0; i < mandatory; ++i) text += random_triple(3) + " ";
  if (rng.NextBool(0.7)) {
    text += "OPTIONAL { " + random_triple(5) + " } ";
  }
  text += "}";

  sparql::Query q = Q(text.c_str());
  ExpectPrunePreservesResults(db, q);
  ExpectCandidatesCoverMatches(db, q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneSoundness,
                         ::testing::Range<uint64_t>(1, 25));

/// UNION shapes go through Prop. 3 normalization before the SOI; the
/// monotone fragment must stay exact on the prune.
class PruneSoundnessUnion : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PruneSoundnessUnion, UnionQueriesStayExact) {
  uint64_t seed = GetParam();
  util::Rng rng(seed + 1000);
  datagen::RandomGraphConfig config;
  config.num_nodes = 30 + rng.NextBounded(30);
  config.num_edges = 150 + rng.NextBounded(150);
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  auto random_triple = [&]() {
    auto var = [&]() { return "?v" + std::to_string(rng.NextBounded(3)); };
    return var() + " <p" + std::to_string(rng.NextBounded(3)) + "> " + var() +
           " .";
  };
  std::string text = "SELECT * WHERE { { " + random_triple() + " " +
                     random_triple() + " } UNION { " + random_triple() +
                     " } }";
  sparql::Query q = Q(text.c_str());

  Evaluator full_eval(&db);
  SolutionSet full = full_eval.Evaluate(q);
  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  SolutionSet on_pruned = Evaluator(&pruned).Evaluate(q);
  // Monotone fragment: exact equality of result multisets after dedupe.
  full.SortAndDedupe();
  on_pruned.SortAndDedupe();
  EXPECT_EQ(RowSet(full), RowSet(on_pruned)) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneSoundnessUnion,
                         ::testing::Range<uint64_t>(1, 13));

TEST(PruneTest, NonWellDesignedOptionalOverapproximates) {
  // The (X3)-style phenomenon: OPTIONAL is non-monotone, so evaluating a
  // non-well-designed query on the pruned database can yield a strict
  // superset of the full result (the paper's "overapproximation", Sect. 1)
  // — but never lose a match.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  sparql::Query q = Q(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "OPTIONAL { ?director <worked_with> ?other . } "
      "?other <directed> ?film . }");

  Evaluator full_eval(&db);
  SolutionSet full = full_eval.Evaluate(q);

  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  SolutionSet on_pruned = Evaluator(&pruned).Evaluate(q);

  auto full_rows = RowSet(full);
  auto pruned_rows = RowSet(on_pruned);
  // Soundness: every full match survives.
  for (const auto& row : full_rows) {
    EXPECT_TRUE(pruned_rows.count(row));
  }
  // And on this instance the containment is strict: G. Hamilton's
  // coworker directs nothing, so his worked_with edge is pruned, the
  // optional part goes unbound, and extra rows appear.
  EXPECT_GT(pruned_rows.size(), full_rows.size());
}

TEST(PruneTest, ExactPrunedEvaluationRemovesOverapproximation) {
  // The exact-mode evaluator (OPTIONAL right-hand sides read the full
  // database) returns the full result set on the prune — the (X3)-style
  // superset disappears.
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  sparql::Query q = Q(
      "SELECT * WHERE { ?director <directed> ?movie . "
      "OPTIONAL { ?director <worked_with> ?other . } "
      "?other <directed> ?film . }");

  Evaluator full_eval(&db);
  SolutionSet full = full_eval.Evaluate(q);

  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);

  engine::EvaluatorOptions exact;
  exact.optional_rhs_db = &db;
  SolutionSet exact_rows = Evaluator(&pruned, exact).Evaluate(q);
  EXPECT_EQ(RowSet(full), RowSet(exact_rows));
}

class ExactPrunedEvaluation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactPrunedEvaluation, RandomOptionalQueriesStayExact) {
  uint64_t seed = GetParam();
  util::Rng rng(seed * 13 + 5);
  datagen::RandomGraphConfig config;
  config.num_nodes = 30 + rng.NextBounded(30);
  config.num_edges = 120 + rng.NextBounded(200);
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = datagen::MakeRandomDatabase(config);

  auto var = [&](int k) { return "?v" + std::to_string(rng.NextBounded(k)); };
  auto triple = [&](int k) {
    return var(k) + " <p" + std::to_string(rng.NextBounded(3)) + "> " +
           var(k) + " .";
  };
  // Deliberately non-well-designed compositions.
  std::string text = "SELECT * WHERE { " + triple(2) + " OPTIONAL { " +
                     triple(4) + " } " + triple(4) + " }";
  sparql::Query q = Q(text.c_str());

  Evaluator full_eval(&db);
  SolutionSet full = full_eval.Evaluate(q);

  SparqlSimProcessor processor(&db);
  PruneReport report = processor.Prune(q);
  graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
  engine::EvaluatorOptions exact;
  exact.optional_rhs_db = &db;
  SolutionSet exact_rows = Evaluator(&pruned, exact).Evaluate(q);
  EXPECT_EQ(RowSet(full), RowSet(exact_rows)) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactPrunedEvaluation,
                         ::testing::Range<uint64_t>(1, 13));

TEST(PruneStatsTest, ReportsTimingsAndBranches) {
  graph::GraphDatabase db = datagen::MakeMovieDatabase();
  SparqlSimProcessor processor(&db);
  PruneReport report =
      processor.Prune(Q("SELECT * WHERE { ?d <directed> ?m . }"));
  EXPECT_EQ(report.num_branches, 1u);
  EXPECT_GE(report.total_seconds, 0.0);
  EXPECT_GE(report.stats.rounds, 1u);
}

}  // namespace
}  // namespace sparqlsim::sim
