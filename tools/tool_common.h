// Small helpers shared by the command-line tools.
#pragma once

#include <cstdio>
#include <optional>
#include <string_view>
#include <utility>

#include "graph/binary_io.h"
#include "graph/graph_database.h"
#include "graph/ntriples.h"
#include "util/stopwatch.h"

namespace sparqlsim::tools {

/// True when `path` ends with `suffix` — the tools' format-dispatch
/// primitive (".gdb" → binary, ".gz" → gzip pipe, anything else →
/// N-Triples text).
inline bool HasSuffix(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.substr(path.size() - suffix.size()) == suffix;
}

/// Loads N-Triples or binary by suffix; `force_binary` (the --db flag's
/// behavior) always reads the SQSIMDB1 format regardless of suffix.
/// Reports load time on stderr; returns nullopt (with a diagnostic) on
/// failure. Shared by sparqlsim_cli and sparqlsim_batch.
inline std::optional<graph::GraphDatabase> LoadDatabase(
    const char* path, bool force_binary = false) {
  util::Stopwatch watch;
  std::optional<graph::GraphDatabase> db;
  if (force_binary || HasSuffix(path, ".gdb")) {
    auto loaded = graph::BinaryIo::LoadFile(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", path,
                   loaded.error_message().c_str());
      return std::nullopt;
    }
    db = std::move(loaded).value();
  } else {
    graph::GraphDatabaseBuilder builder;
    util::Status status = graph::NTriples::LoadFile(path, &builder);
    if (!status.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", path,
                   status.message().c_str());
      return std::nullopt;
    }
    db = std::move(builder).Build();
  }
  std::fprintf(stderr,
               "loaded %zu triples (%zu nodes, %zu predicates) in %.2fs\n",
               db->NumTriples(), db->NumNodes(), db->NumPredicates(),
               watch.ElapsedSeconds());
  return db;
}

}  // namespace sparqlsim::tools
