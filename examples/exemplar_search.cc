// Exemplar-style search via dual simulation — the application family the
// paper cites from Mottin et al. (Sect. 6): the user gives an *example*
// subgraph instead of a query, and the system retrieves all database
// regions whose structure dual-simulates the exemplar.
//
// Here the exemplar is "a film with a director and two cast members who
// are married to each other", expressed directly as a pattern graph, and
// dual simulation retrieves every candidate film/person constellation
// from a DBpedia-like knowledge graph in milliseconds.
//
// Build & run:  ./build/examples/exemplar_search

#include <cstdio>

#include "datagen/dbpedia.h"
#include "sim/dual_simulation.h"
#include "sim/equivalence.h"
#include "sim/soi.h"
#include "sim/strong_simulation.h"
#include "util/stopwatch.h"

int main() {
  using namespace sparqlsim;

  datagen::DbpediaConfig config;
  config.scale = 1;
  graph::GraphDatabase db = datagen::MakeDbpediaDatabase(config);
  std::printf("knowledge graph: %zu triples, %zu nodes, %zu predicates\n",
              db.NumTriples(), db.NumNodes(), db.NumPredicates());

  auto predicate = [&](const char* name) {
    auto id = db.predicates().Lookup(name);
    return id ? *id : sim::kEmptyPredicate;
  };

  // The exemplar: film -director-> d, film -starring-> a1, a2,
  // a1 -spouse-> a2.
  enum { kFilm, kDirector, kActor1, kActor2, kNumNodes };
  graph::Graph exemplar(kNumNodes);
  exemplar.AddEdge(kFilm, predicate("director"), kDirector);
  exemplar.AddEdge(kFilm, predicate("starring"), kActor1);
  exemplar.AddEdge(kFilm, predicate("starring"), kActor2);
  exemplar.AddEdge(kActor1, predicate("spouse"), kActor2);

  util::Stopwatch watch;
  sim::Solution solution = sim::LargestDualSimulation(exemplar, db);
  double seconds = watch.ElapsedSeconds();

  const char* names[] = {"film", "director", "actor1", "actor2"};
  std::printf("\nexemplar retrieval in %.4fs (%zu fixpoint rounds):\n",
              seconds, solution.stats.rounds);
  for (int v = 0; v < kNumNodes; ++v) {
    std::printf("  %-9s %6zu candidates", names[v],
                solution.candidates[v].Count());
    // Show a few.
    int shown = 0;
    solution.candidates[v].ForEachSetBit([&](uint32_t node) {
      if (shown < 3) {
        std::printf("%s %s", shown == 0 ? " e.g." : ",",
                    db.nodes().Name(node).c_str());
      }
      ++shown;
    });
    std::printf("\n");
  }

  if (!solution.AnyCandidate()) {
    std::printf("no region of the graph matches the exemplar\n");
    return 0;
  }

  // Dual-simulation equivalence classes: the candidate fingerprint is far
  // smaller than the candidate sets themselves (the Sect. 6 index idea).
  sim::EquivalenceClasses classes =
      sim::ComputeEquivalenceClasses(solution, db.NumNodes());
  std::printf("\nequivalence classes: %zu classes cover %zu candidate nodes "
              "(%zu nodes discarded)\n",
              classes.num_classes, db.NumNodes() - classes.num_discarded,
              classes.num_discarded);

  // Strong simulation (Ma et al.) separates the merged dual-simulation
  // relation into per-ball constellations, restoring locality.
  watch.Restart();
  sim::StrongSimResult strong = sim::StrongSimulation(exemplar, db);
  std::printf("\nstrong simulation: %zu localized matches (radius %zu, "
              "%zu balls checked) in %.4fs\n",
              strong.matches.size(), strong.radius, strong.balls_checked,
              watch.ElapsedSeconds());
  for (size_t i = 0; i < std::min<size_t>(strong.matches.size(), 3); ++i) {
    const sim::StrongMatch& m = strong.matches[i];
    std::printf("  match %zu (center %s):", i,
                db.nodes().Name(m.center).c_str());
    for (int v = 0; v < kNumNodes; ++v) {
      std::printf(" %s=%zu", names[v], m.candidates[v].Count());
    }
    std::printf("\n");
  }
  return 0;
}
