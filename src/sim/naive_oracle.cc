#include "sim/naive_oracle.h"

#include "sim/soi.h"

namespace sparqlsim::sim {

std::set<std::pair<uint32_t, uint32_t>> OracleLargestDualSimulation(
    const graph::Graph& pattern, const graph::GraphDatabase& db,
    const std::vector<std::optional<uint32_t>>& constants) {
  graph::ResidencyPin residency_pin = db.PinResidency();
  const uint32_t n = static_cast<uint32_t>(db.NumNodes());
  const uint32_t k = static_cast<uint32_t>(pattern.NumNodes());

  std::set<std::pair<uint32_t, uint32_t>> relation;
  for (uint32_t v = 0; v < k; ++v) {
    if (v < constants.size() && constants[v]) {
      relation.emplace(v, *constants[v]);
    } else {
      for (uint32_t x = 0; x < n; ++x) relation.emplace(v, x);
    }
  }

  // Checks Def. 2 for the pair (v, x) against the current relation.
  auto satisfies = [&](uint32_t v, uint32_t x) {
    for (const graph::LabeledEdge& e : pattern.edges()) {
      if (e.label == kEmptyPredicate) {
        if (e.from == v || e.to == v) return false;
        continue;
      }
      if (e.from == v) {
        // (v, a, w) in E1 requires an a-successor of x related to w.
        bool found = false;
        for (uint32_t y : db.Forward(e.label).Row(x)) {
          if (relation.count({e.to, y})) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      if (e.to == v) {
        bool found = false;
        for (uint32_t y : db.Backward(e.label).Row(x)) {
          if (relation.count({e.from, y})) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
    }
    return true;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = relation.begin(); it != relation.end();) {
      if (!satisfies(it->first, it->second)) {
        it = relation.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  return relation;
}

}  // namespace sparqlsim::sim
