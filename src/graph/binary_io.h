#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph_database.h"
#include "util/status.h"

namespace sparqlsim::graph {

/// Compact binary serialization of a graph database — the at-rest format
/// in the spirit of the BitMat storage the paper connects to (Sect. 3.3):
/// dictionaries plus, per predicate, the forward adjacency rows with
/// delta-varint-encoded column indices (the CSR analogue of gap-length
/// encoded bit rows). Loading is typically ~5x faster than re-parsing
/// N-Triples and reproduces identical node/predicate ids, which is what
/// lets `sparqlsim_ingest` pre-convert real dumps once and every bench
/// load them via `--db`.
///
/// The byte-level layout (magic "SQSIMDB" + version byte, LEB128
/// varints, delta coding) and the versioning policy are specified in
/// docs/DATASETS.md ("Binary format SQSIMDB1").
class BinaryIo {
 public:
  /// Writes `db` to `out`. The encoding is a pure function of the
  /// database content, so equal databases serialize byte-identically.
  static void Save(const GraphDatabase& db, std::ostream& out);
  /// Writes `db` to `path`, reporting I/O failures as a Status.
  static util::Status SaveFile(const GraphDatabase& db,
                               const std::string& path);

  /// Reads a database. Rejects foreign files (bad magic), files written
  /// by a newer format version, and truncated/corrupt streams with a
  /// descriptive error — it never relies on stream state or throws.
  static util::Result<GraphDatabase> Load(std::istream& in);
  /// Reads a database from `path`.
  static util::Result<GraphDatabase> LoadFile(const std::string& path);
};

}  // namespace sparqlsim::graph
