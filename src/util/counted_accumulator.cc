#include "util/counted_accumulator.h"

#include <algorithm>
#include <cassert>

namespace sparqlsim::util {

void CountedAccumulator::PrepareRebuild(size_t cols, bool force_wide) {
  const bool sized =
      wide_ ? counts32_.size() == cols : counts16_.size() == cols;
  if (!sized || (force_wide && !wide_)) {
    counts16_.clear();
    counts16_.shrink_to_fit();
    counts32_.clear();
    counts32_.shrink_to_fit();
    wide_ = force_wide;
    if (force_wide) {
      counts32_.assign(cols, 0);
    } else {
      counts16_.assign(cols, 0);
    }
    result_.Resize(cols);
    result_.ClearAll();
    return;
  }
  WipeLive();
}

void CountedAccumulator::WipeLive() {
  uint64_t* words = result_.mutable_words();
  const size_t word_count = result_.WordCount();
  for (size_t w = 0; w < word_count; ++w) {
    uint64_t word = words[w];
    if (word == 0) continue;
    if (wide_) {
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        counts32_[w * BitVector::kWordBits + bit] = 0;
        word &= word - 1;
      }
    } else {
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        counts16_[w * BitVector::kWordBits + bit] = 0;
        word &= word - 1;
      }
    }
    words[w] = 0;
  }
}

size_t CountedAccumulator::RetractRange(const BitMatrix& a,
                                        const BitVector& removed,
                                        size_t col_begin, size_t col_end) {
  size_t cleared = 0;
  removed.ForEachSetBit([&](uint32_t r) {
    const auto row = a.Row(r);
    auto it = std::lower_bound(row.begin(), row.end(),
                               static_cast<uint32_t>(col_begin));
    for (; it != row.end() && *it < col_end; ++it) {
      assert(count(*it) > 0 && "retracting a row that was never selected");
      if (Decrement(*it) == 0) {
        result_.Reset(*it);
        ++cleared;
      }
    }
  });
  return cleared;
}

size_t CountedAccumulator::Retract(const BitMatrix& a,
                                   const BitVector& removed) {
  size_t cleared = 0;
  removed.ForEachSetBit([&](uint32_t r) {
    for (uint32_t c : a.Row(r)) {
      assert(count(c) > 0 && "retracting a row that was never selected");
      if (Decrement(c) == 0) {
        result_.Reset(c);
        ++cleared;
      }
    }
  });
  return cleared;
}

void CountedAccumulator::Widen() {
  assert(!wide_);
  counts32_.assign(counts16_.begin(), counts16_.end());
  wide_ = true;
}

}  // namespace sparqlsim::util
