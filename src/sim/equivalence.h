#pragma once

#include <cstdint>
#include <vector>

#include "sim/solver.h"

namespace sparqlsim::sim {

/// Dual-simulation equivalence classes of database nodes with respect to a
/// solved pattern — the "database fingerprint" direction sketched in
/// Sect. 6 of the paper: nodes with identical candidate membership across
/// all pattern variables are interchangeable for any further processing of
/// the dual simulation, and (dual) simulation equivalence is coarser than
/// the bisimulation used by classical structural indexes, so the
/// fingerprint is smaller.
struct EquivalenceClasses {
  /// Per database node: its class id, or -1 for nodes in no candidate set.
  std::vector<int64_t> class_of;
  /// Number of classes (excluding the discarded pseudo-class).
  size_t num_classes = 0;
  /// Members per class.
  std::vector<size_t> class_sizes;
  /// Signature per class: ascending SOI variable ids whose candidate sets
  /// contain the class members.
  std::vector<std::vector<uint32_t>> signatures;

  /// Number of nodes not in any candidate set.
  size_t num_discarded = 0;
};

/// Groups database nodes by their candidate-membership signature.
EquivalenceClasses ComputeEquivalenceClasses(const Solution& solution,
                                             size_t num_nodes);

}  // namespace sparqlsim::sim
