// sparqlsim-ingest — converts real-world N-Triples dumps (LUBM, DBpedia,
// any RDF export) into the SQSIMDB binary formats consumed by
// `sparqlsim_cli --db` and the bench harnesses.
//
//   sparqlsim_ingest [options] <in.nt | in.nt.gz | -> <out.gdb>
//
// Options:
//   --permissive   count and skip malformed lines instead of aborting —
//                  the right mode for real dumps
//   --threads N    parser threads (default 0 = all hardware threads;
//                  output is byte-identical for every value)
//   --chunk-mb M   parallel parse chunk size in MiB (default 8; tuning
//                  knob only, never changes the output)
//   --format v1|v2 output format (default v1). v2 is the footer-indexed
//                  SQSIMDB2 layout that readers mmap and load lazily per
//                  predicate (see docs/DATASETS.md); v1 stays the default
//                  so existing checksummed artifacts keep reproducing
//   --stats        print line/triple/malformed counters and phase timings
//
// `.gz` inputs are streamed through `gzip -dc` (no temporary file);
// `-` reads N-Triples from stdin. The conversion is deterministic: the
// same input produces the same output bytes regardless of --threads and
// --chunk-mb, so converted artifacts can be checksummed and shared (see
// tools/fetch_datasets.sh and docs/DATASETS.md).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <istream>
#include <memory>
#include <optional>
#include <streambuf>
#include <string>
#include <vector>

#include "tool_common.h"

#include "graph/binary_io.h"
#include "graph/graph_database.h"
#include "graph/ntriples.h"
#include "util/stopwatch.h"

namespace sparqlsim {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: sparqlsim_ingest [--permissive] [--threads N] [--chunk-mb M] "
      "[--format v1|v2] [--stats] <in.nt[.gz]|-> <out.gdb>\n"
      "  converts an N-Triples dump (optionally gzip-compressed, '-' for\n"
      "  stdin) to the SQSIMDB1 (default) or mmap-able SQSIMDB2 binary\n"
      "  database format; see docs/DATASETS.md for the end-to-end dataset\n"
      "  workflow\n");
  return 2;
}

using tools::HasSuffix;

/// Minimal read-only streambuf over a popen'd pipe, used to stream
/// `gzip -dc` output into the chunked parser without a temporary file.
class PipeStreamBuf : public std::streambuf {
 public:
  explicit PipeStreamBuf(FILE* pipe) : pipe_(pipe) {}

 protected:
  int_type underflow() override {
    size_t got = std::fread(buffer_, 1, sizeof(buffer_), pipe_);
    if (got == 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + got);
    return traits_type::to_int_type(buffer_[0]);
  }

 private:
  FILE* pipe_;
  char buffer_[1 << 16];
};

/// Single-quotes `path` for the shell ('\'' splice for embedded quotes).
std::string ShellQuote(const std::string& path) {
  std::string quoted = "'";
  for (char c : path) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted.push_back(c);
    }
  }
  quoted.push_back('\'');
  return quoted;
}

struct IngestConfig {
  std::string input;
  std::string output;
  graph::NTriplesOptions parse;
  bool format_v2 = false;
  bool print_stats = false;
};

int RunIngest(const IngestConfig& config) {
  util::Stopwatch total_watch;
  util::Stopwatch phase_watch;

  // Open the input: stdin, a gzip pipe, or a plain file.
  std::unique_ptr<std::ifstream> file;
  std::unique_ptr<PipeStreamBuf> pipe_buf;
  std::unique_ptr<std::istream> pipe_stream;
  FILE* pipe = nullptr;
  std::istream* in = nullptr;

  if (config.input == "-") {
    in = &std::cin;
  } else if (HasSuffix(config.input, ".gz")) {
    std::string command =
        "exec gzip -dc < " + ShellQuote(config.input);
    pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) {
      std::fprintf(stderr, "error: cannot spawn '%s'\n", command.c_str());
      return 1;
    }
    pipe_buf = std::make_unique<PipeStreamBuf>(pipe);
    pipe_stream = std::make_unique<std::istream>(pipe_buf.get());
    in = pipe_stream.get();
  } else {
    file = std::make_unique<std::ifstream>(config.input, std::ios::binary);
    if (!*file) {
      std::fprintf(stderr, "error: cannot open %s\n", config.input.c_str());
      return 1;
    }
    in = file.get();
  }

  // Parse (parallel), then freeze the builder, then serialize.
  graph::GraphDatabaseBuilder builder;
  graph::NTriplesStats stats;
  util::Status status =
      graph::NTriples::LoadParallel(*in, &builder, config.parse, &stats);
  if (pipe != nullptr && pclose(pipe) != 0 && status.ok()) {
    status = util::Status::Error("decompression command failed on " +
                                 config.input);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error parsing %s: %s\n", config.input.c_str(),
                 status.message().c_str());
    return 1;
  }
  double parse_seconds = phase_watch.ElapsedSeconds();

  phase_watch.Restart();
  graph::GraphDatabase db = std::move(builder).Build();
  double build_seconds = phase_watch.ElapsedSeconds();

  phase_watch.Restart();
  // Both writers go through a tmp file + atomic rename, so a failed or
  // interrupted ingest never leaves a partial database at the output path.
  util::Status saved =
      config.format_v2
          ? graph::BinaryIo::SaveV2File(db, config.output,
                                        config.parse.num_threads)
          : graph::BinaryIo::SaveFile(db, config.output);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.message().c_str());
    return 1;
  }
  double write_seconds = phase_watch.ElapsedSeconds();

  std::fprintf(stderr,
               "ingested %zu triples (%zu nodes, %zu predicates) -> %s "
               "in %.2fs\n",
               db.NumTriples(), db.NumNodes(), db.NumPredicates(),
               config.output.c_str(), total_watch.ElapsedSeconds());
  if (stats.malformed_lines > 0) {
    std::fprintf(stderr, "skipped %zu malformed line%s (first: %s)\n",
                 stats.malformed_lines,
                 stats.malformed_lines == 1 ? "" : "s",
                 stats.first_error.c_str());
  }
  if (config.print_stats) {
    std::printf("lines:            %zu\n", stats.lines);
    std::printf("triples (input):  %zu\n", stats.triples);
    std::printf("triples (dedup):  %zu\n", db.NumTriples());
    std::printf("malformed lines:  %zu\n", stats.malformed_lines);
    std::printf("nodes:            %zu\n", db.NumNodes());
    std::printf("predicates:       %zu\n", db.NumPredicates());
    std::printf("parse seconds:    %.3f\n", parse_seconds);
    std::printf("build seconds:    %.3f\n", build_seconds);
    std::printf("write seconds:    %.3f\n", write_seconds);
  }
  return 0;
}

int Run(int argc, char** argv) {
  IngestConfig config;
  config.parse.num_threads = 0;  // default: all hardware threads

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--permissive") {
      config.parse.permissive = true;
    } else if (arg == "--stats") {
      config.print_stats = true;
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (value == nullptr) return Usage();
      config.parse.num_threads =
          static_cast<size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.parse.num_threads = static_cast<size_t>(
          std::strtoull(arg.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      const char* value;
      if (arg == "--format") {
        value = next_value("--format");
        if (value == nullptr) return Usage();
      } else {
        value = arg.c_str() + std::strlen("--format=");
      }
      if (std::strcmp(value, "v1") == 0) {
        config.format_v2 = false;
      } else if (std::strcmp(value, "v2") == 0) {
        config.format_v2 = true;
      } else {
        std::fprintf(stderr, "--format must be v1 or v2, got '%s'\n", value);
        return Usage();
      }
    } else if (arg == "--chunk-mb") {
      const char* value = next_value("--chunk-mb");
      if (value == nullptr) return Usage();
      size_t mb = static_cast<size_t>(std::strtoull(value, nullptr, 10));
      if (mb == 0) {
        std::fprintf(stderr, "--chunk-mb must be >= 1\n");
        return Usage();
      }
      config.parse.chunk_bytes = mb << 20;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.size() != 2) return Usage();
  config.input = positional[0];
  config.output = positional[1];
  return RunIngest(config);
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
