// Edge-case coverage for the full-spec N-Triples parser (typed/lang
// literals, blank nodes, escapes, CRLF, permissive mode) and the
// determinism contract of the chunked parallel loader: identical builder
// state — and byte-identical BinaryIo output — for every thread count and
// chunk size, including versus the sequential Load.

#include "graph/ntriples.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "datagen/lubm.h"
#include "graph/binary_io.h"
#include "graph/graph_database.h"

namespace sparqlsim::graph {
namespace {

GraphDatabase ParseOrDie(const std::string& text,
                         const NTriplesOptions& options = {},
                         NTriplesStats* stats = nullptr) {
  std::istringstream in(text);
  GraphDatabaseBuilder builder;
  util::Status status = NTriples::Load(in, &builder, options, stats);
  EXPECT_TRUE(status.ok()) << status.message();
  return std::move(builder).Build();
}

std::string SerializedBinary(const GraphDatabase& db) {
  std::ostringstream out;
  BinaryIo::Save(db, out);
  return out.str();
}

TEST(NTriplesEdgeTest, TypedLiteral) {
  GraphDatabase db = ParseOrDie(
      "<a> <age> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n");
  ASSERT_TRUE(db.nodes().Lookup("42").has_value());
  EXPECT_TRUE(db.IsLiteral(*db.nodes().Lookup("42")));
  EXPECT_EQ(db.NumTriples(), 1u);
}

TEST(NTriplesEdgeTest, LanguageTaggedLiteral) {
  GraphDatabase db = ParseOrDie(
      "<a> <label> \"chat\"@fr .\n"
      "<a> <label> \"cat\"@en-US .\n");
  EXPECT_TRUE(db.nodes().Lookup("chat").has_value());
  EXPECT_TRUE(db.nodes().Lookup("cat").has_value());
  EXPECT_EQ(db.NumTriples(), 2u);
}

TEST(NTriplesEdgeTest, TypedAndPlainLiteralsInternToSameNode) {
  // Datatypes are validated and dropped (untyped literal universe L).
  GraphDatabase db = ParseOrDie(
      "<a> <p> \"42\" .\n"
      "<b> <p> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .\n");
  EXPECT_EQ(db.NumNodes(), 3u);  // a, b, "42"
}

TEST(NTriplesEdgeTest, MalformedLiteralSuffixesRejected) {
  GraphDatabaseBuilder b1, b2, b3;
  std::istringstream bad_lang("<a> <p> \"x\"@ .\n");
  EXPECT_FALSE(NTriples::Load(bad_lang, &b1).ok());
  std::istringstream bad_caret("<a> <p> \"x\"^<y> .\n");
  EXPECT_FALSE(NTriples::Load(bad_caret, &b2).ok());
  std::istringstream bad_datatype("<a> <p> \"x\"^^y .\n");
  EXPECT_FALSE(NTriples::Load(bad_datatype, &b3).ok());
}

TEST(NTriplesEdgeTest, BlankNodes) {
  GraphDatabase db = ParseOrDie(
      "_:b0 <knows> _:b1 .\n"
      "_:b1 <name> \"alice\" .\n"
      "<iri> <knows> _:b0 .\n");
  ASSERT_TRUE(db.nodes().Lookup("_:b0").has_value());
  ASSERT_TRUE(db.nodes().Lookup("_:b1").has_value());
  EXPECT_FALSE(db.IsLiteral(*db.nodes().Lookup("_:b0")));
  EXPECT_EQ(db.NumTriples(), 3u);
}

TEST(NTriplesEdgeTest, EcharEscapes) {
  GraphDatabase db = ParseOrDie(
      "<a> <p> \"tab\\there\\nnewline\\r\\\"quote\\\\back\" .\n");
  EXPECT_TRUE(
      db.nodes().Lookup("tab\there\nnewline\r\"quote\\back").has_value());
}

TEST(NTriplesEdgeTest, UnicodeEscapes) {
  GraphDatabase db = ParseOrDie(
      "<a> <p> \"\\u0041\\u00e9\\U0001F600\" .\n"
      "<iri\\u0041> <p> <b> .\n");
  // A (1 byte), é (2 bytes), U+1F600 (4 bytes).
  EXPECT_TRUE(db.nodes().Lookup("A\xc3\xa9\xf0\x9f\x98\x80").has_value());
  // \u escapes are decoded inside IRIs too.
  EXPECT_TRUE(db.nodes().Lookup("iriA").has_value());
}

TEST(NTriplesEdgeTest, BadUnicodeEscapesRejected) {
  GraphDatabaseBuilder b1, b2;
  std::istringstream bad_hex("<a> <p> \"\\u00zz\" .\n");
  EXPECT_FALSE(NTriples::Load(bad_hex, &b1).ok());
  std::istringstream surrogate("<a> <p> \"\\uD800\" .\n");
  EXPECT_FALSE(NTriples::Load(surrogate, &b2).ok());
}

TEST(NTriplesEdgeTest, CrlfAndWhitespaceTolerance) {
  GraphDatabase db = ParseOrDie(
      "<a> <p> <b> .\r\n"
      "  <b>\t<p>\t\"lit\"  . \r\n"
      "# comment\r\n"
      "<c> <p> <d> . # trailing comment\n");
  EXPECT_EQ(db.NumTriples(), 3u);
  // The \r never leaks into a term.
  EXPECT_TRUE(db.nodes().Lookup("lit").has_value());
  EXPECT_FALSE(db.nodes().Lookup("lit\r").has_value());
}

TEST(NTriplesEdgeTest, PermissiveModeCountsAndSkips) {
  NTriplesStats stats;
  NTriplesOptions options;
  options.permissive = true;
  GraphDatabase db = ParseOrDie(
      "<a> <p> <b> .\n"
      "this line is garbage\n"
      "<c> <p> \"unterminated .\n"
      "<d> <p> <e> .\n"
      "<f> <p> <g>\n",
      options, &stats);
  EXPECT_EQ(db.NumTriples(), 2u);
  EXPECT_EQ(stats.triples, 2u);
  EXPECT_EQ(stats.malformed_lines, 3u);
  EXPECT_EQ(stats.lines, 5u);
  EXPECT_NE(stats.first_error.find("line 2"), std::string::npos);
}

TEST(NTriplesEdgeTest, PermissiveSkipsLiteralSubject) {
  // "lit" becomes a literal on line 1; using it as subject violates
  // Def. 1 and is skipped (counted), not fatal, in permissive mode.
  NTriplesStats stats;
  NTriplesOptions options;
  options.permissive = true;
  GraphDatabase db = ParseOrDie(
      "<a> <p> \"lit\" .\n"
      "<lit> <p> <b> .\n",
      options, &stats);
  EXPECT_EQ(db.NumTriples(), 1u);
  EXPECT_EQ(stats.malformed_lines, 1u);

  // Strict mode: same input is a hard error naming the line.
  std::istringstream in("<a> <p> \"lit\" .\n<lit> <p> <b> .\n");
  GraphDatabaseBuilder builder;
  util::Status status = NTriples::Load(in, &builder);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(NTriplesEdgeTest, StrictLanguageTagGrammar) {
  // LANGTAG is [a-zA-Z]+('-'[a-zA-Z0-9]+)*: leading digits and dangling
  // hyphens are malformed, digit subtags after the first are fine.
  GraphDatabaseBuilder b1, b2, b3;
  std::istringstream leading_digit("<a> <p> \"x\"@2en .\n");
  EXPECT_FALSE(NTriples::Load(leading_digit, &b1).ok());
  std::istringstream trailing_hyphen("<a> <p> \"x\"@en- .\n");
  EXPECT_FALSE(NTriples::Load(trailing_hyphen, &b2).ok());
  std::istringstream valid("<a> <p> \"x\"@en-US-2 .\n");
  EXPECT_TRUE(NTriples::Load(valid, &b3).ok());
}

TEST(NTriplesEdgeTest, WriteEscapesHostileIriCharacters) {
  // Node/predicate names containing '>', backslashes, or newlines (e.g.
  // decoded from \u escapes on load) must re-escape on Write so the dump
  // always re-parses to the same database.
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("a>b", "p\\u0041", "new\nline").ok());
  ASSERT_TRUE(b.AddTriple("_:not a label", "p", "o").ok());
  GraphDatabase db = std::move(b).Build();

  std::ostringstream out;
  NTriples::Write(db, out);
  std::istringstream in(out.str());
  GraphDatabaseBuilder b2;
  ASSERT_TRUE(NTriples::Load(in, &b2).ok());
  EXPECT_EQ(SerializedBinary(std::move(b2).Build()), SerializedBinary(db));
}

TEST(NTriplesEdgeTest, TrailingGarbageRejected) {
  GraphDatabaseBuilder b;
  std::istringstream in("<a> <p> <b> . extra tokens\n");
  EXPECT_FALSE(NTriples::Load(in, &b).ok());
}

TEST(NTriplesEdgeTest, WriteRoundTripsEscapesAndBlanks) {
  GraphDatabaseBuilder b;
  ASSERT_TRUE(b.AddTriple("_:b0", "p", "o").ok());
  ASSERT_TRUE(b.AddTripleLiteral("s", "p", "line\nbreak\t\"q\"\\").ok());
  GraphDatabase db = std::move(b).Build();

  std::ostringstream out;
  NTriples::Write(db, out);
  std::istringstream in(out.str());
  GraphDatabaseBuilder b2;
  ASSERT_TRUE(NTriples::Load(in, &b2).ok());
  GraphDatabase db2 = std::move(b2).Build();
  EXPECT_EQ(SerializedBinary(db), SerializedBinary(db2));
}

// ---------------------------------------------------------------------------
// Parallel loader determinism
// ---------------------------------------------------------------------------

std::string LubmText() {
  datagen::LubmConfig config;
  config.num_universities = 1;
  std::ostringstream out;
  NTriples::Write(datagen::MakeLubmDatabase(config), out);
  return out.str();
}

TEST(NTriplesParallelTest, MatchesSequentialByteForByte) {
  const std::string text = LubmText();

  GraphDatabaseBuilder sequential;
  std::istringstream seq_in(text);
  ASSERT_TRUE(NTriples::Load(seq_in, &sequential).ok());
  const std::string reference =
      SerializedBinary(std::move(sequential).Build());

  // Tiny chunks force many cross-chunk dictionary merges.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t chunk_bytes : {size_t{512}, size_t{64} << 10}) {
      NTriplesOptions options;
      options.num_threads = threads;
      options.chunk_bytes = chunk_bytes;
      std::istringstream in(text);
      GraphDatabaseBuilder builder;
      NTriplesStats stats;
      ASSERT_TRUE(NTriples::LoadParallel(in, &builder, options, &stats).ok());
      GraphDatabase db = std::move(builder).Build();
      EXPECT_EQ(SerializedBinary(db), reference)
          << "threads=" << threads << " chunk_bytes=" << chunk_bytes;
      EXPECT_EQ(stats.triples, db.NumTriples());
    }
  }
}

TEST(NTriplesParallelTest, LineLongerThanChunkNeverSplits) {
  std::string long_name(100000, 'x');
  std::string text = "<a> <p> <b> .\n<s> <p> <" + long_name + "> .\n"
                     "<c> <p> <d> .\n";
  NTriplesOptions options;
  options.num_threads = 4;
  options.chunk_bytes = 128;  // far smaller than the long line
  std::istringstream in(text);
  GraphDatabaseBuilder builder;
  ASSERT_TRUE(NTriples::LoadParallel(in, &builder, options).ok());
  GraphDatabase db = std::move(builder).Build();
  EXPECT_EQ(db.NumTriples(), 3u);
  EXPECT_TRUE(db.nodes().Lookup(long_name).has_value());
}

TEST(NTriplesParallelTest, PermissiveStatsMatchSequential) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "<s" + std::to_string(i % 17) + "> <p" + std::to_string(i % 3) +
            "> <o" + std::to_string(i) + "> .\n";
    if (i % 10 == 0) text += "broken line " + std::to_string(i) + "\n";
  }

  NTriplesOptions sequential_options;
  sequential_options.permissive = true;
  NTriplesStats sequential_stats;
  GraphDatabase sequential =
      ParseOrDie(text, sequential_options, &sequential_stats);

  NTriplesOptions options;
  options.permissive = true;
  options.num_threads = 8;
  options.chunk_bytes = 256;
  std::istringstream in(text);
  GraphDatabaseBuilder builder;
  NTriplesStats stats;
  ASSERT_TRUE(NTriples::LoadParallel(in, &builder, options, &stats).ok());
  GraphDatabase db = std::move(builder).Build();

  EXPECT_EQ(SerializedBinary(db), SerializedBinary(sequential));
  EXPECT_EQ(stats.triples, sequential_stats.triples);
  EXPECT_EQ(stats.malformed_lines, sequential_stats.malformed_lines);
  EXPECT_EQ(stats.lines, sequential_stats.lines);
  EXPECT_EQ(stats.first_error, sequential_stats.first_error);
}

TEST(NTriplesParallelTest, StrictErrorNamesTheAbsoluteLine) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "<s" + std::to_string(i) + "> <p> <o> .\n";
  }
  text += "broken\n";  // line 101

  std::istringstream seq_in(text);
  GraphDatabaseBuilder seq_builder;
  NTriplesStats sequential_stats;
  util::Status sequential_status =
      NTriples::Load(seq_in, &seq_builder, {}, &sequential_stats);
  ASSERT_FALSE(sequential_status.ok());

  NTriplesOptions options;
  options.num_threads = 4;
  options.chunk_bytes = 128;
  std::istringstream in(text);
  GraphDatabaseBuilder builder;
  NTriplesStats stats;
  util::Status status = NTriples::LoadParallel(in, &builder, options, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 101"), std::string::npos)
      << status.message();
  EXPECT_EQ(status.message(), sequential_status.message());
  EXPECT_EQ(stats.lines, sequential_stats.lines);
}

TEST(NTriplesParallelTest, FileRoundTrip) {
  const std::string path = "/tmp/sparqlsim_ntriples_parallel_test.nt";
  {
    std::ofstream out(path);
    out << "<a> <p> <b> .\n<b> <p> \"lit\"@en .\n_:x <p> <a> .\n";
  }
  GraphDatabaseBuilder builder;
  NTriplesOptions options;
  options.num_threads = 2;
  ASSERT_TRUE(
      NTriples::LoadFileParallel(path, &builder, options).ok());
  EXPECT_EQ(std::move(builder).Build().NumTriples(), 3u);
  GraphDatabaseBuilder missing;
  EXPECT_FALSE(
      NTriples::LoadFileParallel("/nonexistent/x.nt", &missing, options)
          .ok());
}

// --- max_line_bytes: the chunk reader's unbounded-growth cap -------------
//
// Before the cap, a line with no newline grew NextChunk's buffer until EOF
// — a newline-free multi-gigabyte file was slurped whole while the reader
// hunted for a chunk boundary. These tests pin the replacement behavior:
// an over-limit line is malformed (skipped in permissive mode, a hard
// error in strict mode, with the same message either way), and the chunk
// buffers stay near chunk_bytes + max_line_bytes no matter the input.

// A syntactically VALID triple whose line is over the limit — proving the
// length cap, not the grammar, is what rejects it.
std::string OversizeText() {
  std::string giant(8192, 'x');
  return "<a> <p> <b> .\n<s> <p> <" + giant + "> .\n<c> <p> <d> .\n";
}

TEST(NTriplesLineLimitTest, StrictErrorMatchesSequential) {
  NTriplesOptions options;
  options.max_line_bytes = 1024;

  std::istringstream seq_in(OversizeText());
  GraphDatabaseBuilder seq_builder;
  NTriplesStats seq_stats;
  util::Status sequential =
      NTriples::Load(seq_in, &seq_builder, options, &seq_stats);
  ASSERT_FALSE(sequential.ok());
  EXPECT_NE(sequential.message().find("line 2"), std::string::npos);
  EXPECT_NE(sequential.message().find("1024-byte line limit"),
            std::string::npos)
      << sequential.message();

  options.num_threads = 4;
  options.chunk_bytes = 2048;
  std::istringstream par_in(OversizeText());
  GraphDatabaseBuilder par_builder;
  NTriplesStats par_stats;
  util::Status parallel =
      NTriples::LoadParallel(par_in, &par_builder, options, &par_stats);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.message(), sequential.message());
  EXPECT_EQ(par_stats.lines, seq_stats.lines);
}

TEST(NTriplesLineLimitTest, PermissiveSkipsAndBoundsChunkGrowth) {
  // Two oversize lines, the second unterminated at EOF.
  std::string text = OversizeText() + "<t> <p> <" +
                     std::string(300000, 'y') + "> .";  // no trailing \n

  NTriplesOptions options;
  options.permissive = true;
  options.max_line_bytes = 1024;
  NTriplesStats seq_stats;
  GraphDatabase sequential = ParseOrDie(text, options, &seq_stats);
  EXPECT_EQ(sequential.NumTriples(), 2u);
  EXPECT_EQ(seq_stats.malformed_lines, 2u);

  options.num_threads = 4;
  options.chunk_bytes = 2048;
  std::istringstream in(text);
  GraphDatabaseBuilder builder;
  NTriplesStats stats;
  ASSERT_TRUE(NTriples::LoadParallel(in, &builder, options, &stats).ok());
  GraphDatabase db = std::move(builder).Build();

  EXPECT_EQ(SerializedBinary(db), SerializedBinary(sequential));
  EXPECT_EQ(stats.malformed_lines, seq_stats.malformed_lines);
  EXPECT_EQ(stats.lines, seq_stats.lines);
  EXPECT_EQ(stats.first_error, seq_stats.first_error);

  // The 300 KB garbage line must never reach a chunk buffer whole: peak
  // stays near chunk_bytes + the read granularity, far below the input.
  EXPECT_GT(stats.peak_chunk_bytes, 0u);
  EXPECT_LT(stats.peak_chunk_bytes, size_t{32} << 10)
      << "chunk buffers grew with the oversize line";
}

TEST(NTriplesLineLimitTest, ZeroDisablesTheLimit) {
  NTriplesOptions options;
  options.max_line_bytes = 0;
  NTriplesStats stats;
  GraphDatabase db = ParseOrDie(OversizeText(), options, &stats);
  EXPECT_EQ(db.NumTriples(), 3u);
  EXPECT_EQ(stats.malformed_lines, 0u);
}

}  // namespace
}  // namespace sparqlsim::graph
