#include "datagen/lubm.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace sparqlsim::datagen {

namespace {

struct Ids {
  graph::GraphDatabaseBuilder* builder = nullptr;

  uint32_t type_p = 0, sub_org = 0, works_for = 0, member_of = 0, head_of = 0,
           advisor = 0, teacher_of = 0, takes_course = 0, ta_of = 0,
           pub_author = 0, ug_degree = 0, ms_degree = 0, phd_degree = 0,
           name_p = 0, email_p = 0, phone_p = 0, interest_p = 0, title_p = 0;

  void InternPredicates() {
    type_p = builder->InternPredicate("rdf:type");
    sub_org = builder->InternPredicate("subOrganizationOf");
    works_for = builder->InternPredicate("worksFor");
    member_of = builder->InternPredicate("memberOf");
    head_of = builder->InternPredicate("headOf");
    advisor = builder->InternPredicate("advisor");
    teacher_of = builder->InternPredicate("teacherOf");
    takes_course = builder->InternPredicate("takesCourse");
    ta_of = builder->InternPredicate("teachingAssistantOf");
    pub_author = builder->InternPredicate("publicationAuthor");
    ug_degree = builder->InternPredicate("undergraduateDegreeFrom");
    ms_degree = builder->InternPredicate("mastersDegreeFrom");
    phd_degree = builder->InternPredicate("doctoralDegreeFrom");
    name_p = builder->InternPredicate("name");
    email_p = builder->InternPredicate("emailAddress");
    phone_p = builder->InternPredicate("telephone");
    interest_p = builder->InternPredicate("researchInterest");
    title_p = builder->InternPredicate("title");
  }
};

}  // namespace

graph::GraphDatabase MakeLubmDatabase(const LubmConfig& config) {
  util::Rng rng(config.seed);
  graph::GraphDatabaseBuilder builder;
  Ids ids{&builder};
  ids.InternPredicates();

  auto node = [&](const std::string& n) { return builder.InternNode(n); };
  auto add = [&](uint32_t s, uint32_t p, uint32_t o) {
    util::Status status = builder.AddTripleIds(s, p, o);
    (void)status;
  };
  auto attr = [&](uint32_t s, uint32_t p, const std::string& value) {
    if (!config.attribute_triples) return;
    util::Status status =
        builder.AddTripleIds(s, p, builder.InternLiteral(value));
    (void)status;
  };

  uint32_t c_university = node("University");
  uint32_t c_department = node("Department");
  uint32_t c_full = node("FullProfessor");
  uint32_t c_assoc = node("AssociateProfessor");
  uint32_t c_assist = node("AssistantProfessor");
  uint32_t c_lecturer = node("Lecturer");
  uint32_t c_grad = node("GraduateStudent");
  uint32_t c_ugrad = node("UndergraduateStudent");
  uint32_t c_course = node("Course");
  uint32_t c_grad_course = node("GraduateCourse");
  uint32_t c_publication = node("Publication");

  std::vector<uint32_t> universities;
  universities.reserve(config.num_universities);
  for (size_t u = 0; u < config.num_universities; ++u) {
    uint32_t univ = node("U" + std::to_string(u));
    universities.push_back(univ);
    add(univ, ids.type_p, c_university);
  }
  auto random_university = [&]() {
    return universities[rng.NextBounded(universities.size())];
  };

  for (size_t u = 0; u < config.num_universities; ++u) {
    uint32_t univ = universities[u];
    size_t num_depts = 12 + rng.NextBounded(8);
    for (size_t d = 0; d < num_depts; ++d) {
      std::string dept_name = "U" + std::to_string(u) + "/D" +
                              std::to_string(d);
      uint32_t dept = node(dept_name);
      add(dept, ids.type_p, c_department);
      add(dept, ids.sub_org, univ);

      // --- Faculty ---
      struct Prof {
        uint32_t id;
        std::vector<uint32_t> publications;
        std::vector<uint32_t> courses;
      };
      std::vector<Prof> faculty;
      auto make_prof = [&](const char* code, uint32_t cls, size_t i) {
        uint32_t prof = node(dept_name + "/" + code + std::to_string(i));
        add(prof, ids.type_p, cls);
        add(prof, ids.works_for, dept);
        add(prof, ids.ug_degree, random_university());
        add(prof, ids.ms_degree, random_university());
        add(prof, ids.phd_degree, random_university());
        attr(prof, ids.name_p, dept_name + "/" + code + std::to_string(i) +
                                   "-name");
        attr(prof, ids.email_p,
             code + std::to_string(i) + "@" + dept_name);
        attr(prof, ids.phone_p, "555-" + std::to_string(rng.NextBounded(9999)));
        attr(prof, ids.interest_p,
             "Research" + std::to_string(rng.NextBounded(25)));
        faculty.push_back({prof, {}, {}});
      };
      size_t num_full = 6 + rng.NextBounded(4);
      size_t num_assoc = 8 + rng.NextBounded(4);
      size_t num_assist = 6 + rng.NextBounded(4);
      for (size_t i = 0; i < num_full; ++i) make_prof("FP", c_full, i);
      for (size_t i = 0; i < num_assoc; ++i) make_prof("ACP", c_assoc, i);
      for (size_t i = 0; i < num_assist; ++i) make_prof("ASP", c_assist, i);
      add(faculty[0].id, ids.head_of, dept);
      // Professors advise; lecturers (below) teach but never advise, which
      // is what makes the L0 triangle eliminate nodes transitively.
      size_t advising_faculty = faculty.size();
      size_t num_lecturers = 5 + rng.NextBounded(4);
      for (size_t i = 0; i < num_lecturers; ++i) {
        make_prof("LEC", c_lecturer, i);
      }

      // --- Courses: every faculty member teaches 1-2. ---
      std::vector<uint32_t> courses;
      std::vector<uint32_t> grad_courses;
      size_t course_counter = 0;
      for (Prof& prof : faculty) {
        size_t teaches = 1 + rng.NextBounded(2);
        for (size_t c = 0; c < teaches; ++c) {
          uint32_t course =
              node(dept_name + "/C" + std::to_string(course_counter++));
          bool graduate = rng.NextBool(0.35);
          add(course, ids.type_p, graduate ? c_grad_course : c_course);
          add(prof.id, ids.teacher_of, course);
          prof.courses.push_back(course);
          (graduate ? grad_courses : courses).push_back(course);
        }
      }
      if (grad_courses.empty()) grad_courses = courses;
      if (courses.empty()) courses = grad_courses;

      // --- Publications. ---
      size_t pub_counter = 0;
      for (Prof& prof : faculty) {
        size_t num_pubs = 4 + rng.NextBounded(8);
        for (size_t p = 0; p < num_pubs; ++p) {
          uint32_t pub = node(dept_name + "/P" + std::to_string(pub_counter++));
          add(pub, ids.type_p, c_publication);
          add(pub, ids.pub_author, prof.id);
          attr(pub, ids.title_p,
               dept_name + "/P" + std::to_string(pub_counter - 1) + "-title");
          prof.publications.push_back(pub);
        }
      }

      // --- Graduate students. ---
      size_t num_grads = faculty.size() * (2 + rng.NextBounded(2));
      for (size_t g = 0; g < num_grads; ++g) {
        uint32_t grad = node(dept_name + "/G" + std::to_string(g));
        add(grad, ids.type_p, c_grad);
        add(grad, ids.member_of, dept);
        uint32_t degree_univ = rng.NextBool(config.same_university_degree_rate)
                                   ? univ
                                   : random_university();
        add(grad, ids.ug_degree, degree_univ);
        const Prof& adv = faculty[rng.NextBounded(advising_faculty)];
        add(grad, ids.advisor, adv.id);
        size_t num_courses = 1 + rng.NextBounded(3);
        for (size_t c = 0; c < num_courses; ++c) {
          add(grad, ids.takes_course,
              grad_courses[rng.NextBounded(grad_courses.size())]);
        }
        // Half the students take one of their advisor's courses — this is
        // what closes the cyclic cores of L0 (Fig. 6(a)) at a realistic
        // rate, as in real LUBM.
        if (rng.NextBool(0.5) && !adv.courses.empty()) {
          add(grad, ids.takes_course,
              adv.courses[rng.NextBounded(adv.courses.size())]);
        }
        if (rng.NextBool(0.25) && !adv.publications.empty()) {
          add(adv.publications[rng.NextBounded(adv.publications.size())],
              ids.pub_author, grad);
        }
        if (rng.NextBool(0.2)) {
          add(grad, ids.ta_of, courses[rng.NextBounded(courses.size())]);
        }
        attr(grad, ids.name_p, dept_name + "/G" + std::to_string(g) + "-name");
        attr(grad, ids.email_p, "g" + std::to_string(g) + "@" + dept_name);
      }

      // --- Undergraduate students. ---
      size_t num_ugrads = faculty.size() * (8 + rng.NextBounded(4));
      for (size_t g = 0; g < num_ugrads; ++g) {
        uint32_t ugrad = node(dept_name + "/UG" + std::to_string(g));
        add(ugrad, ids.type_p, c_ugrad);
        add(ugrad, ids.member_of, dept);
        size_t num_courses = 2 + rng.NextBounded(3);
        for (size_t c = 0; c < num_courses; ++c) {
          add(ugrad, ids.takes_course,
              courses[rng.NextBounded(courses.size())]);
        }
        attr(ugrad, ids.name_p,
             dept_name + "/UG" + std::to_string(g) + "-name");
      }
    }
  }

  return std::move(builder).Build();
}

}  // namespace sparqlsim::datagen
