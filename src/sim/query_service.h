#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_database.h"
#include "sim/sim_engine.h"
#include "sim/soi_cache.h"
#include "sim/solver.h"
#include "sparql/ast.h"
#include "util/admission_gate.h"
#include "util/thread_pool.h"

namespace sparqlsim::sim {

struct QueryServiceOptions {
  /// Service worker threads executing whole queries (query-level
  /// parallelism); 0 = hardware concurrency. Intra-query parallelism is a
  /// separate knob: `solver.num_threads` (default 1 keeps each query on its
  /// worker, the right shape for a loaded server).
  size_t num_workers = 0;

  /// Max queries admitted but not yet completed. Submit blocks once the
  /// bound is reached — backpressure instead of unbounded queue growth.
  /// Coalesced duplicates ride along without consuming a slot. 0 is
  /// clamped to 1.
  size_t queue_depth = 64;

  /// Entry bound of the service's SoiCache (0 = unbounded); an entry is
  /// one SOI plus, once solved, its attached solution.
  size_t cache_capacity = 0;

  /// Per-query solver policy; `cache_sois`/`cache_solutions` toggle the
  /// service cache as for a plain SimEngine.
  SolverOptions solver;

  /// Test seam: invoked on the worker thread immediately before a query is
  /// solved. Lets tests pin a worker mid-flight to observe deterministic
  /// coalescing/backpressure. Null in production.
  std::function<void()> solve_hook;
};

/// The async front end above SimEngine: accepts queries from any thread,
/// runs them on an owned util::ThreadPool behind a bounded admission queue,
/// and deduplicates in-flight identical queries.
///
///   Submit(query)  ->  std::future<PruneReport>
///
/// Identity for deduplication is sparql::CanonicalPatternKey of the WHERE
/// pattern: two submissions whose patterns are canonically equal while the
/// first is still in flight share one solve, and every waiter receives the
/// full PruneReport (the report depends only on the pattern, so this is
/// exact, not approximate). After the in-flight entry completes, the next
/// identical submission admits a fresh solve — which then typically ends in
/// the SoiCache's solution layer instead of solver work.
///
/// Determinism: every query solves through one shared SimEngine whose
/// results are bit-identical for any thread count, and concurrent queries
/// share only the immutable database and the mutex-guarded SoiCache (whose
/// contents never change a result, only whether it is recomputed). A
/// concurrent submission mix therefore yields reports bit-identical to a
/// sequential SimEngine::Prune of the same queries, for any worker count,
/// queue depth, or cache capacity — tests/query_service_test.cc holds this
/// under TSan.
///
/// Thread-safety: all public methods may be called from any thread. The
/// destructor drains in-flight queries; do not race it against Submit.
class QueryService {
 public:
  struct Stats {
    /// Submissions accepted (Submit calls; SubmitBatch counts each query).
    size_t submitted = 0;
    /// Queries actually solved on a worker.
    size_t executed = 0;
    /// Submissions answered by attaching to an in-flight duplicate.
    /// submitted == executed + coalesced once drained.
    size_t coalesced = 0;
    /// High-water mark of admitted-but-unfinished queries (bounded by
    /// queue_depth).
    size_t peak_in_flight = 0;
    /// Service cache snapshot (zero-valued when caching is off).
    SoiCache::Stats cache;
    size_t cached_sois = 0;
    size_t cached_solutions = 0;
  };

  /// Binds the service to `db` (borrowed; must outlive the service).
  explicit QueryService(const graph::GraphDatabase* db,
                        QueryServiceOptions options = {});
  /// Drains: blocks until every admitted query has completed.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query. Blocks while queue_depth queries are in flight
  /// (unless the query coalesces onto an in-flight duplicate). The future
  /// never carries an exception.
  std::future<PruneReport> Submit(const sparql::Query& query);

  /// Submits all queries (concurrently, subject to the admission bound) and
  /// blocks for the results, returned in submission order.
  std::vector<PruneReport> SubmitBatch(
      const std::vector<sparql::Query>& queries);

  /// Blocks until no query is in flight.
  void Drain();

  Stats stats() const;
  const QueryServiceOptions& options() const { return options_; }
  const SimEngine& engine() const { return engine_; }

 private:
  struct InFlight {
    std::vector<std::promise<PruneReport>> waiters;
  };

  /// Worker-side: solve, then settle every waiter of `key`.
  void RunQuery(const std::string& key,
                std::shared_ptr<const sparql::Query> query);

  QueryServiceOptions options_;
  SimEngine engine_;
  util::AdmissionGate gate_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
  size_t submitted_ = 0;
  size_t executed_ = 0;
  size_t coalesced_ = 0;
  size_t peak_in_flight_ = 0;

  /// Declared last: destroyed first, which joins the workers while every
  /// member they touch is still alive.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace sparqlsim::sim
