#include "sim/hhk_baseline.h"

#include <deque>

#include "util/stopwatch.h"

namespace sparqlsim::sim {

Solution HhkDualSimulation(
    const graph::Graph& pattern, const graph::GraphDatabase& db,
    const std::vector<std::optional<uint32_t>>& constants) {
  util::Stopwatch timer;
  graph::ResidencyPin residency_pin = db.PinResidency();
  const size_t n = db.NumNodes();
  const size_t k = pattern.NumNodes();
  const auto edges = pattern.edges();

  Solution solution;
  solution.candidates.assign(k, util::BitVector(n));
  std::vector<util::BitVector>& sim = solution.candidates;
  for (size_t v = 0; v < k; ++v) {
    if (v < constants.size() && constants[v]) {
      sim[v].Set(*constants[v]);
    } else {
      sim[v].SetAll();
    }
  }

  // Counter tables, one pair per pattern edge.
  std::vector<std::vector<uint32_t>> cnt_fwd(edges.size());
  std::vector<std::vector<uint32_t>> cnt_bwd(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    cnt_fwd[e].assign(n, 0);
    cnt_bwd[e].assign(n, 0);
    if (edges[e].label == kEmptyPredicate) continue;
    const util::BitMatrix& fwd = db.Forward(edges[e].label);
    const util::BitMatrix& bwd = db.Backward(edges[e].label);
    for (uint32_t x : fwd.NonEmptyRows()) {
      uint32_t count = 0;
      for (uint32_t y : fwd.Row(x)) count += sim[edges[e].to].Test(y) ? 1 : 0;
      cnt_fwd[e][x] = count;
    }
    for (uint32_t y : bwd.NonEmptyRows()) {
      uint32_t count = 0;
      for (uint32_t x : bwd.Row(y)) count += sim[edges[e].from].Test(x) ? 1 : 0;
      cnt_bwd[e][y] = count;
    }
  }

  // Pattern-edge adjacency: which edges read a given pattern node.
  std::vector<std::vector<uint32_t>> edges_from(k), edges_to(k);
  for (size_t e = 0; e < edges.size(); ++e) {
    edges_from[edges[e].from].push_back(static_cast<uint32_t>(e));
    edges_to[edges[e].to].push_back(static_cast<uint32_t>(e));
  }

  std::deque<std::pair<uint32_t, uint32_t>> queue;  // (pattern node, data node)
  auto disqualify = [&](uint32_t v, uint32_t x) {
    sim[v].Reset(x);
    queue.emplace_back(v, x);
  };

  // Initial pass: drop candidates whose counters start at zero.
  for (size_t e = 0; e < edges.size(); ++e) {
    uint32_t v = edges[e].from;
    uint32_t w = edges[e].to;
    sim[v].ForEachSetBit([&](uint32_t x) {
      if (cnt_fwd[e][x] == 0) disqualify(v, x);
    });
    sim[w].ForEachSetBit([&](uint32_t y) {
      if (cnt_bwd[e][y] == 0) disqualify(w, y);
    });
  }

  SolveStats& stats = solution.stats;
  while (!queue.empty()) {
    auto [u, y] = queue.front();
    queue.pop_front();
    ++stats.evaluations;

    // y left sim(u). For every pattern edge (v, a, u): data predecessors of
    // y lose one forward witness.
    for (uint32_t e : edges_to[u]) {
      if (edges[e].label == kEmptyPredicate) continue;
      uint32_t v = edges[e].from;
      const util::BitMatrix& bwd = db.Backward(edges[e].label);
      for (uint32_t x : bwd.Row(y)) {
        if (--cnt_fwd[e][x] == 0 && sim[v].Test(x)) {
          ++stats.updates;
          disqualify(v, x);
        }
      }
    }
    // For every pattern edge (u, a, w): data successors of y lose one
    // backward witness.
    for (uint32_t e : edges_from[u]) {
      if (edges[e].label == kEmptyPredicate) continue;
      uint32_t w = edges[e].to;
      const util::BitMatrix& fwd = db.Forward(edges[e].label);
      for (uint32_t z : fwd.Row(y)) {
        if (--cnt_bwd[e][z] == 0 && sim[w].Test(z)) {
          ++stats.updates;
          disqualify(w, z);
        }
      }
    }
  }

  stats.rounds = 1;
  stats.solve_seconds = timer.ElapsedSeconds();
  return solution;
}

}  // namespace sparqlsim::sim
