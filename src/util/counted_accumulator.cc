#include "util/counted_accumulator.h"

#include <cassert>

namespace sparqlsim::util {

size_t CountedAccumulator::Retract(const BitMatrix& a,
                                   const BitVector& removed) {
  size_t cleared = 0;
  removed.ForEachSetBit([&](uint32_t r) {
    for (uint32_t c : a.Row(r)) {
      assert(count(c) > 0 && "retracting a row that was never selected");
      if (Decrement(c) == 0) {
        result_.Reset(c);
        ++cleared;
      }
    }
  });
  return cleared;
}

void CountedAccumulator::Widen() {
  assert(!wide_);
  counts32_.assign(counts16_.begin(), counts16_.end());
  wide_ = true;
}

}  // namespace sparqlsim::util
