// Reproduces Table 3 of the paper: for every query of the L/D/B workloads,
// the result-set size, the number of required triples (triples witnessed
// by at least one match — the lower bound for any sound prune), the
// SPARQLSIM pruning time, and the number of triples left after pruning.
//
// Expected shape (paper): >= 95% of the database pruned for every query;
// D/B queries prune in split-seconds; the L1 analogue keeps far more
// triples than required (dual-simulation over-approximation, Sect. 5.3);
// empty queries (D1, B4, B5, B15) leave 0 triples.

#include <cstdio>

#include "bench/bench_common.h"
#include "engine/evaluator.h"
#include "engine/required_triples.h"
#include "sim/pruner.h"

namespace sparqlsim {
namespace {

void RunWorkload(const char* dataset_name, const graph::GraphDatabase& db,
                 const std::vector<datagen::NamedQuery>& queries) {
  sim::SparqlSimProcessor processor(&db);
  engine::Evaluator evaluator(&db);

  std::printf("\n[%s] %zu triples\n", dataset_name, db.NumTriples());
  std::printf("%-6s %12s %12s %12s %14s %8s\n", "Query", "Results",
              "Req.Triples", "t_SIM(s)", "Tripl.Pruned", "Kept%");
  bench::PrintRule(72);

  for (const auto& [id, text] : queries) {
    sparql::Query query = bench::ParseOrDie(text);

    sim::PruneReport report;
    double t_sim = bench::TimeAverage([&] { report = processor.Prune(query); });

    engine::SolutionSet results = evaluator.Evaluate(query);
    size_t required = engine::CollectRequiredTriples(query, db, evaluator).size();

    double kept_pct =
        100.0 * static_cast<double>(report.kept_triples.size()) /
        static_cast<double>(db.NumTriples());
    std::printf("%-6s %12zu %12zu %12.5f %14zu %7.3f%%\n", id.c_str(),
                results.NumRows(), required, t_sim,
                report.kept_triples.size(), kept_pct);
  }
}

int Run(int argc, char** argv) {
  std::printf("Table 3: result sizes, required triples, SPARQLSIM pruning "
              "time, and triples after pruning\n");

  // `--db <file.gdb>` runs every workload on a real ingested database.
  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  if (override_db) {
    RunWorkload("--db (L)", *override_db, datagen::LubmQueries());
    RunWorkload("--db (D)", *override_db, datagen::DbpediaQueries());
    RunWorkload("--db (B)", *override_db, datagen::BenchmarkQueries());
    return 0;
  }

  graph::GraphDatabase lubm = bench::MakeBenchLubm();
  RunWorkload("LUBM-like", lubm, datagen::LubmQueries());

  graph::GraphDatabase dbp = bench::MakeBenchDbpedia();
  RunWorkload("DBpedia-like (D)", dbp, datagen::DbpediaQueries());
  RunWorkload("DBpedia-like (B)", dbp, datagen::BenchmarkQueries());
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
