#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "sparql/ast.h"

namespace sparqlsim::sim {

/// Sentinel predicate id for a query predicate that does not occur in the
/// database: its adjacency matrix is empty, so products through it are
/// empty and the affected candidate sets drain to the empty set, which is
/// exactly the semantics the paper's construction requires.
constexpr uint32_t kEmptyPredicate = 0xFFFFFFFF;

/// A system of inequalities E = (Var, Eq) over candidate bit-vectors
/// (Sect. 3.2 / Sect. 4 of the paper).
///
/// Variables are the SOI variables: one per occurrence group of a query
/// variable (surrogates such as the paper's v_Q2 included) plus one per
/// constant term. Inequalities come in two forms:
///
///  * MatrixIneq — `lhs <= rhs *b A` with A = F_p (forward = true) or
///    B_p (forward = false), the per-edge inequalities of Eq. (11);
///  * SubIneq — `lhs <= rhs`, the subordination inequalities Eq. (14)/(15)
///    that tie optional occurrence groups to their mandatory anchor.
///
/// `edges` records the pattern edges with their SOI endpoints; they drive
/// both the Eq. (13) initialization and the pruning extraction of Sect. 5.
struct Soi {
  struct MatrixIneq {
    uint32_t lhs;        // SOI var being constrained
    uint32_t rhs;        // SOI var whose candidates select matrix rows
    uint32_t predicate;  // database predicate id or kEmptyPredicate
    bool forward;        // true: A = F_p; false: A = B_p
  };
  struct SubIneq {
    uint32_t lhs;
    uint32_t rhs;
  };
  struct Edge {
    uint32_t subject_var;
    uint32_t predicate;  // database predicate id or kEmptyPredicate
    uint32_t object_var;
  };

  std::vector<std::string> var_names;
  /// Per SOI var: the database node id the var is pinned to (constant
  /// terms; Sect. 4.5), nullopt for proper variables. A constant term not
  /// present in the database is encoded as a pinned empty set via
  /// `unsatisfiable_vars`.
  std::vector<std::optional<uint32_t>> constants;
  /// Vars whose candidate set is empty from the start (unknown constants).
  std::vector<bool> unsatisfiable_vars;

  std::vector<MatrixIneq> matrix_ineqs;
  std::vector<SubIneq> sub_ineqs;
  std::vector<Edge> edges;

  /// Original query variable -> the SOI vars carrying its candidates
  /// (the mandatory anchor if one exists, otherwise all optional
  /// occurrence groups). Surrogate-only helper vars are not listed.
  std::map<std::string, std::vector<uint32_t>> query_var_groups;

  /// Number of SOI variables (candidate bit-vectors a solution carries).
  size_t NumVars() const { return var_names.size(); }

  /// Human-readable rendering in the style of Fig. 3 of the paper.
  std::string ToString(const graph::GraphDatabase& db) const;
};

/// Builds the SOI of a pattern graph whose edge labels already are database
/// predicate ids (the pure dual-simulation setting of Sect. 3: variables
/// are the pattern's nodes, Eq. (11) per edge).
Soi BuildSoiFromGraph(const graph::Graph& pattern);

/// Builds the SOI of a *union-free* SPARQL pattern against `db` per
/// Sect. 4: Lemma 3 unification for AND, Lemma 4/5 renaming plus
/// subordination for OPTIONAL (including the closest-occurrence chains of
/// Sect. 4.4), constants pinned per Sect. 4.5. UNION nodes must be removed
/// first via sparql::UnionNormalForm; passing one is a programming error.
Soi BuildSoiFromPattern(const sparql::Pattern& pattern,
                        const graph::GraphDatabase& db);

}  // namespace sparqlsim::sim
