#include <gtest/gtest.h>

#include "datagen/random_graphs.h"
#include "sim/dual_simulation.h"
#include "sim/hhk_baseline.h"
#include "sim/ma_baseline.h"
#include "sim/naive_oracle.h"
#include "sim/soi.h"

namespace sparqlsim::sim {
namespace {

using datagen::MakeRandomDatabase;
using datagen::MakeRandomPattern;
using datagen::RandomGraphConfig;

/// The largest dual simulation is unique (Prop. 1), so every algorithm
/// must return the identical relation. This is the central cross-check of
/// the repository: SOI solver == Ma et al. == HHK == brute-force oracle.
struct EquivalenceCase {
  size_t db_nodes;
  size_t db_edges;
  size_t labels;
  size_t pattern_nodes;
  size_t pattern_extra_edges;
  uint64_t seed;
};

class BaselineEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(BaselineEquivalence, AllAlgorithmsAgree) {
  const EquivalenceCase& c = GetParam();
  RandomGraphConfig config;
  config.num_nodes = c.db_nodes;
  config.num_edges = c.db_edges;
  config.num_labels = c.labels;
  config.seed = c.seed;
  graph::GraphDatabase db = MakeRandomDatabase(config);
  graph::Graph pattern = MakeRandomPattern(c.pattern_nodes,
                                           c.pattern_extra_edges, c.labels,
                                           c.seed * 31 + 7);

  Solution soi = LargestDualSimulation(pattern, db);
  Solution ma = MaDualSimulation(pattern, db);
  Solution hhk = HhkDualSimulation(pattern, db);
  auto oracle = OracleLargestDualSimulation(pattern, db);

  std::set<std::pair<uint32_t, uint32_t>> from_soi, from_ma, from_hhk;
  for (uint32_t v = 0; v < pattern.NumNodes(); ++v) {
    soi.candidates[v].ForEachSetBit(
        [&](uint32_t x) { from_soi.emplace(v, x); });
    ma.candidates[v].ForEachSetBit([&](uint32_t x) { from_ma.emplace(v, x); });
    hhk.candidates[v].ForEachSetBit(
        [&](uint32_t x) { from_hhk.emplace(v, x); });
  }
  EXPECT_EQ(from_soi, oracle);
  EXPECT_EQ(from_ma, oracle);
  EXPECT_EQ(from_hhk, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, BaselineEquivalence,
    ::testing::Values(
        EquivalenceCase{20, 60, 2, 3, 1, 1}, EquivalenceCase{20, 60, 2, 3, 1, 2},
        EquivalenceCase{30, 90, 3, 4, 2, 3}, EquivalenceCase{30, 90, 3, 4, 2, 4},
        EquivalenceCase{40, 200, 2, 5, 3, 5},
        EquivalenceCase{40, 200, 4, 5, 3, 6},
        EquivalenceCase{50, 100, 3, 4, 0, 7},
        EquivalenceCase{50, 400, 5, 6, 4, 8},
        EquivalenceCase{60, 120, 1, 3, 2, 9},
        EquivalenceCase{60, 300, 2, 2, 2, 10},
        EquivalenceCase{25, 50, 6, 4, 1, 11},
        EquivalenceCase{80, 500, 3, 5, 2, 12}));

/// Solver strategy knobs must not change the fixpoint (only the route to
/// it): row-wise, column-wise, dynamic, with and without Eq. (13) init and
/// ordering heuristic.
class SolverStrategyEquivalence
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverStrategyEquivalence, AllStrategiesReachSameFixpoint) {
  uint64_t seed = GetParam();
  RandomGraphConfig config;
  config.num_nodes = 60;
  config.num_edges = 240;
  config.num_labels = 3;
  config.seed = seed;
  graph::GraphDatabase db = MakeRandomDatabase(config);
  graph::Graph pattern = MakeRandomPattern(4, 3, 3, seed + 1000);

  std::vector<SolverOptions> variants;
  for (bool summary : {false, true}) {
    for (bool order : {false, true}) {
      for (auto mode : {SolverOptions::EvalMode::kRowWise,
                        SolverOptions::EvalMode::kColumnWise,
                        SolverOptions::EvalMode::kDynamic}) {
        SolverOptions o;
        o.summary_init = summary;
        o.order_by_sparsity = order;
        o.eval_mode = mode;
        variants.push_back(o);
      }
    }
  }

  Solution reference = LargestDualSimulation(pattern, db, variants[0]);
  for (size_t i = 1; i < variants.size(); ++i) {
    Solution other = LargestDualSimulation(pattern, db, variants[i]);
    ASSERT_EQ(reference.candidates.size(), other.candidates.size());
    for (size_t v = 0; v < reference.candidates.size(); ++v) {
      EXPECT_EQ(reference.candidates[v], other.candidates[v])
          << "variant " << i << " differs on pattern node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverStrategyEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

TEST(BaselineStatsTest, SoiWorklistIsLazierThanFullSweeps) {
  // The motivating observation of Sect. 3: the passive full-sweep strategy
  // re-checks everything until global stability, while the worklist only
  // revisits invalidated inequalities. Assert the laziness on the SOI's own
  // counters — strictly fewer evaluations than full rounds-times-
  // inequalities sweeps would cost. (Raw counters are not comparable across
  // the two algorithms since the solver's round-snapshot evaluation defers
  // in-round propagation to keep results thread-count independent.)
  RandomGraphConfig config;
  config.num_nodes = 200;
  config.num_edges = 800;
  config.num_labels = 2;
  config.seed = 77;
  graph::GraphDatabase db = MakeRandomDatabase(config);
  graph::Graph pattern = MakeRandomPattern(5, 3, 2, 78);

  Solution soi = LargestDualSimulation(pattern, db);
  Solution ma = MaDualSimulation(pattern, db);
  EXPECT_GE(ma.stats.rounds, 1u);
  const size_t num_ineqs = 2 * pattern.edges().size();  // Eq. (11) pairs
  ASSERT_GE(soi.stats.rounds, 2u);
  EXPECT_LT(soi.stats.evaluations, soi.stats.rounds * num_ineqs);
}

TEST(BaselineConstantsTest, ConstantsRestrictAllAlgorithms) {
  RandomGraphConfig config;
  config.num_nodes = 30;
  config.num_edges = 120;
  config.num_labels = 2;
  config.seed = 5;
  graph::GraphDatabase db = MakeRandomDatabase(config);
  graph::Graph pattern = MakeRandomPattern(3, 1, 2, 6);

  std::vector<std::optional<uint32_t>> constants(3);
  constants[0] = 4;  // pin pattern node 0 to database node 4

  Soi soi = BuildSoiFromGraph(pattern);
  soi.constants[0] = 4;
  Solution s = SolveSoi(soi, db);
  Solution ma = MaDualSimulation(pattern, db, constants);
  Solution hhk = HhkDualSimulation(pattern, db, constants);
  auto oracle = OracleLargestDualSimulation(pattern, db, constants);

  std::set<std::pair<uint32_t, uint32_t>> from_soi, from_ma, from_hhk;
  for (uint32_t v = 0; v < 3; ++v) {
    s.candidates[v].ForEachSetBit([&](uint32_t x) { from_soi.emplace(v, x); });
    ma.candidates[v].ForEachSetBit([&](uint32_t x) { from_ma.emplace(v, x); });
    hhk.candidates[v].ForEachSetBit(
        [&](uint32_t x) { from_hhk.emplace(v, x); });
  }
  EXPECT_EQ(from_soi, oracle);
  EXPECT_EQ(from_ma, oracle);
  EXPECT_EQ(from_hhk, oracle);
  for (const auto& [v, x] : from_soi) {
    if (v == 0) {
      EXPECT_EQ(x, 4u);
    }
  }
}

}  // namespace
}  // namespace sparqlsim::sim
