// Small helpers shared by the command-line tools.
#pragma once

#include <string_view>

namespace sparqlsim::tools {

/// True when `path` ends with `suffix` — the tools' format-dispatch
/// primitive (".gdb" → binary, ".gz" → gzip pipe, anything else →
/// N-Triples text).
inline bool HasSuffix(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.substr(path.size() - suffix.size()) == suffix;
}

}  // namespace sparqlsim::tools
