#include "util/candidate_set.h"

#include <algorithm>
#include <cassert>

namespace sparqlsim::util {

namespace {

/// Emits the runs of `word >> 0 .. take` (take <= 64 bits) into the
/// writer, counting the one-bits kept.
void EmitWordRuns(uint64_t word, size_t take, GapWriter* writer,
                  size_t* ones_kept) {
  size_t p = 0;
  while (p < take) {
    const uint64_t rest = word >> p;
    if (rest == 0) {
      writer->Append(false, take - p);
      return;
    }
    const unsigned zeros =
        (rest & 1) ? 0 : static_cast<unsigned>(__builtin_ctzll(rest));
    if (zeros != 0) {
      const size_t z = std::min<size_t>(zeros, take - p);
      writer->Append(false, z);
      p += z;
      if (p >= take) return;
    }
    const uint64_t inv = ~(word >> p);
    size_t ones = inv == 0 ? 64 : static_cast<size_t>(__builtin_ctzll(inv));
    ones = std::min(ones, take - p);
    writer->Append(true, ones);
    *ones_kept += ones;
    p += ones;
  }
}

/// Streams the one-run [start, start+len) of a compressed set masked by
/// `words` into the writer; surviving sub-runs only.
void EmitMaskedRun(const uint64_t* words, size_t start, size_t len,
                   GapWriter* writer, size_t* ones_kept) {
  size_t bit = start;
  const size_t end = start + len;
  while (bit < end) {
    const size_t w = bit / BitVector::kWordBits;
    const size_t off = bit % BitVector::kWordBits;
    const size_t take = std::min(BitVector::kWordBits - off, end - bit);
    // The run claims bits [off, off+take) of this word; everything the
    // mask keeps there survives, the rest becomes zero-runs.
    const uint64_t mask =
        take == BitVector::kWordBits
            ? ~uint64_t{0}
            : ((uint64_t{1} << take) - 1) << off;
    EmitWordRuns((words[w] & mask) >> off, take, writer, ones_kept);
    bit += take;
  }
}

}  // namespace

CandidateSet::CandidateSet(size_t num_bits, Policy policy)
    : policy_(policy), num_bits_(num_bits), dense_(num_bits) {
  Reconsider();
}

CandidateSet::CandidateSet(BitVector bits, Policy policy)
    : policy_(policy),
      num_bits_(bits.size()),
      count_(bits.Count()),
      dense_(std::move(bits)) {
  Reconsider();
}

bool CandidateSet::Test(size_t i) const {
  assert(i < num_bits_);
  if (!compressed_) return dense_.Test(i);
  GapReader reader(gap_);
  uint64_t run = 0;
  size_t pos = 0;
  bool value = false;
  while (reader.ReadRun(&run)) {
    pos += run;
    if (i < pos) return value;
    value = !value;
  }
  return false;
}

void CandidateSet::Set(size_t i) {
  assert(i < num_bits_);
  // Single-bit writes happen only during solver initialization (constant
  // pins); decompress-set-reconsider keeps the layout rule a pure
  // function of the resulting occupancy.
  if (compressed_) Decompress();
  if (!dense_.Test(i)) {
    dense_.Set(i);
    ++count_;
  }
  Reconsider();
}

void CandidateSet::SetAll() {
  if (compressed_) {
    // One all-ones run; no word materialization.
    GapWriter writer;
    writer.Append(true, num_bits_);
    gap_ = writer.Take();
    ++stats_.compressed_ops;
  } else {
    dense_.SetAll();
  }
  count_ = num_bits_;
  Reconsider();
}

void CandidateSet::ClearAll() {
  if (compressed_) {
    // Draining in place is a compressed-form op: re-encode as one
    // zero-run, no words touched.
    GapWriter writer;
    writer.Append(false, num_bits_);
    gap_ = writer.Take();
    ++stats_.compressed_ops;
  } else {
    dense_.ClearAll();
  }
  count_ = 0;
  Reconsider();
}

bool CandidateSet::AndWith(const BitVector& other) {
  assert(other.size() == num_bits_);
  if (count_ == 0) return false;
  if (compressed_) {
    const bool changed = AndWithCompressed(other);
    if (changed) Reconsider();
    return changed;
  }
  const bool changed = dense_.AndWith(other);
  if (changed) {
    count_ = dense_.Count();
    Reconsider();
  }
  return changed;
}

bool CandidateSet::AndWithCompressed(const BitVector& other) {
  GapReader reader(gap_);
  GapWriter writer;
  const uint64_t* words = other.words();
  uint64_t run = 0;
  size_t pos = 0;
  size_t kept = 0;
  bool value = false;
  while (reader.ReadRun(&run)) {
    if (value) {
      EmitMaskedRun(words, pos, run, &writer, &kept);
    } else {
      writer.Append(false, run);
    }
    pos += run;
    value = !value;
  }
  assert(!reader.malformed() && pos == num_bits_);
  ++stats_.compressed_ops;
  // AND only clears bits, so "anything changed" is exactly "the count
  // dropped" — and an unchanged result needs no buffer swap.
  if (kept == count_) return false;
  gap_ = writer.Take();
  count_ = kept;
  return true;
}

void CandidateSet::ClearBitsIn(BitVector* target) const {
  assert(target->size() == num_bits_);
  if (!compressed_) {
    target->AndNotWith(dense_.bits());
    return;
  }
  GapReader reader(gap_);
  uint64_t run = 0;
  size_t pos = 0;
  bool value = false;
  while (reader.ReadRun(&run)) {
    if (value) {
      for (uint64_t i = 0; i < run; ++i) target->Reset(pos + i);
    }
    pos += run;
    value = !value;
  }
}

void CandidateSet::MaterializeInto(BitVector* out) const {
  if (!compressed_) {
    *out = dense_.bits();
    return;
  }
  // Single pass: the runs tile [0, num_bits_) exactly, so writing each
  // run (set or clear) fully overwrites a possibly recycled `out` without
  // the O(size/64) ClearAll a fresh buffer would not have needed either.
  out->Resize(num_bits_);
  GapReader reader(gap_);
  uint64_t run = 0;
  size_t pos = 0;
  bool value = false;
  while (reader.ReadRun(&run)) {
    if (value) {
      out->SetRange(pos, run);
    } else {
      out->ClearRange(pos, run);
    }
    pos += run;
    value = !value;
  }
}

BitVector CandidateSet::ToBitVector() const {
  BitVector out;
  MaterializeInto(&out);
  return out;
}

BitVector CandidateSet::TakeBits() && {
  if (!compressed_) return std::move(dense_).TakeBits();
  return ToBitVector();
}

CandidateSet::ReprStats CandidateSet::TakeStats() {
  stats_.blocks_skipped += dense_.TakeBlocksSkipped();
  stats_.words_cleared += dense_.TakeWordsCleared();
  ReprStats taken = stats_;
  stats_ = ReprStats{};
  return taken;
}

void CandidateSet::ResetForReuse(size_t num_bits, Policy policy) {
  policy_ = policy;
  num_bits_ = num_bits;
  count_ = 0;
  stats_ = ReprStats{};
  compressed_ = false;
  gap_.clear();  // keep capacity for the next compression
  dense_.ResetForReuse(num_bits);
  // Same layout rule as the fresh ctor, including its stat side effects
  // (a kCompressed/kAuto-wide empty set immediately compresses and counts
  // one compression) — recycled and fresh sets stay indistinguishable.
  Reconsider();
}

void CandidateSet::ResetTo(const BitVector& bits, Policy policy) {
  policy_ = policy;
  num_bits_ = bits.size();
  count_ = bits.Count();
  stats_ = ReprStats{};
  compressed_ = false;
  gap_.clear();
  dense_.AssignFrom(bits);
  Reconsider();
}

void CandidateSet::Reconsider() {
  switch (policy_) {
    case Policy::kDense:
      if (compressed_) Decompress();
      return;
    case Policy::kCompressed:
      if (!compressed_) Compress();
      return;
    case Policy::kAuto:
      if (!compressed_) {
        if (num_bits_ >= kMinCompressBits &&
            count_ * kCompressDivisor < num_bits_) {
          Compress();
        }
      } else if (count_ * kDecompressDivisor >= num_bits_) {
        Decompress();
      }
      return;
  }
}

void CandidateSet::Compress() {
  assert(!compressed_);
  // The dense layer's skip counter survives the layout switch.
  stats_.blocks_skipped += dense_.TakeBlocksSkipped();
  if (count_ == 0) {
    // An empty set is a single zero-run. GapWriter merges same-value
    // appends, so this is byte-identical to Encode() of the all-zero
    // payload — without reading a word of it.
    GapWriter writer;
    writer.Append(false, num_bits_);
    gap_ = writer.Take();
  } else {
    gap_ = GapCodec::Encode(dense_.bits());
  }
  // dense_ is retained as spare storage (stale from here on, wiped and
  // refilled by Decompress) — see the member comment in the header.
  compressed_ = true;
  ++stats_.compressions;
}

void CandidateSet::Decompress() {
  assert(compressed_);
  if (dense_.size() == num_bits_) {
    // Refill the retained spare in place: wipe its stale live blocks,
    // then materialize the one-runs. No allocation on this path.
    dense_.ClearLive();
    GapReader reader(gap_);
    uint64_t run = 0;
    size_t pos = 0;
    bool value = false;
    while (reader.ReadRun(&run)) {
      if (value) dense_.SetRange(pos, run);
      pos += run;
      value = !value;
    }
  } else {
    // No usable spare (moved-from or never-dense set): materialize fresh.
    BitVector bits;
    MaterializeInto(&bits);
    dense_ = HierarchicalBitVector(std::move(bits));
  }
  gap_.clear();  // keep capacity: the set may compress again
  compressed_ = false;
  ++stats_.decompressions;
}

}  // namespace sparqlsim::util
