#include "util/gap_codec.h"

#include <cstdio>
#include <cstdlib>

namespace sparqlsim::util {

namespace {

void AppendVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

size_t VarintSize(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

/// Calls fn(value, run_length) for every alternating run of `bits`,
/// starting with the (possibly empty) zero-run. Word-wise: cost is
/// O(words + runs), not O(bits). Consecutive same-value stretches may be
/// reported as several calls (at word boundaries); sinks that need merged
/// runs go through GapWriter, which merges on append.
template <typename Fn>
void ForEachRunWordwise(const BitVector& bits, Fn&& fn) {
  const uint64_t* words = bits.words();
  size_t remaining = bits.size();
  for (size_t w = 0; remaining > 0; ++w) {
    const size_t take = remaining < 64 ? remaining : 64;
    const uint64_t word = words[w];
    size_t p = 0;
    while (p < take) {
      const uint64_t rest = word >> p;
      if (rest == 0) {
        fn(false, take - p);
        break;
      }
      const unsigned zeros =
          (rest & 1) ? 0 : static_cast<unsigned>(__builtin_ctzll(rest));
      if (zeros != 0) {
        fn(false, zeros < take - p ? zeros : take - p);
        p += zeros;
        if (p >= take) break;
      }
      const uint64_t inv = ~(word >> p);
      unsigned ones =
          inv == 0 ? 64 : static_cast<unsigned>(__builtin_ctzll(inv));
      if (ones > take - p) ones = static_cast<unsigned>(take - p);
      fn(true, ones);
      p += ones;
    }
    remaining -= take;
  }
}

}  // namespace

void GapWriter::Flush() {
  // The canonical stream starts with a zero-run even when it is empty;
  // interior runs are never empty because Append merges same-value runs.
  if (pending_ == 0 && emitted_any_) return;
  AppendVarint(pending_, &out_);
  bits_written_ += pending_;
  pending_ = 0;
  emitted_any_ = true;
}

std::vector<uint8_t> GapCodec::Encode(const BitVector& bits) {
  GapWriter writer;
  ForEachRunWordwise(bits,
                     [&](bool value, size_t run) { writer.Append(value, run); });
  return writer.Take();
}

std::optional<BitVector> GapCodec::TryDecode(std::span<const uint8_t> buffer,
                                             size_t num_bits) {
  BitVector bits(num_bits);
  GapReader reader(buffer);
  uint64_t run = 0;
  size_t bit = 0;
  bool value = false;
  bool first = true;
  while (reader.ReadRun(&run)) {
    if (run == 0 && !first) return std::nullopt;  // interior empty run
    first = false;
    if (run > num_bits - bit) return std::nullopt;  // overshoots the universe
    if (value) bits.SetRange(bit, run);
    bit += run;
    value = !value;
    if (bit == num_bits && !reader.AtEnd()) return std::nullopt;  // trailing
  }
  if (reader.malformed()) return std::nullopt;
  if (bit != num_bits) return std::nullopt;  // undershoots the universe
  return bits;
}

BitVector GapCodec::Decode(const std::vector<uint8_t>& buffer,
                           size_t num_bits) {
  std::optional<BitVector> decoded = TryDecode(buffer, num_bits);
  if (!decoded) {
    std::fprintf(stderr,
                 "GapCodec::Decode: malformed %zu-byte buffer for %zu bits\n",
                 buffer.size(), num_bits);
    std::abort();
  }
  return *std::move(decoded);
}

size_t GapCodec::EncodedSize(const BitVector& bits) {
  // Mirror Encode exactly (merged runs, leading zero-run) but only sum
  // varint widths.
  size_t total = 0;
  bool pending_value = false;
  uint64_t pending = 0;
  bool emitted_any = false;
  auto flush = [&] {
    if (pending == 0 && emitted_any) return;
    total += VarintSize(pending);
    pending = 0;
    emitted_any = true;
  };
  ForEachRunWordwise(bits, [&](bool value, size_t run) {
    if (value == pending_value) {
      pending += run;
      return;
    }
    flush();
    pending_value = value;
    pending = run;
  });
  if (pending > 0) flush();
  return total;
}

void GapCodec::EncodeFromIndices(std::span<const uint32_t> indices,
                                 size_t num_bits, std::vector<uint8_t>* out) {
  size_t pos = 0;  // next unencoded bit position
  size_t i = 0;
  while (i < indices.size()) {
    // Zero run up to the next set bit (the canonical stream's leading
    // zero-run is emitted even when empty).
    AppendVarint(indices[i] - pos, out);
    // One run of consecutive indices.
    size_t run = 1;
    while (i + run < indices.size() &&
           indices[i + run] == indices[i] + run) {
      ++run;
    }
    AppendVarint(run, out);
    pos = indices[i] + run;
    i += run;
  }
  if (pos < num_bits) AppendVarint(num_bits - pos, out);
}

bool GapCodec::TryDecodeIndices(std::span<const uint8_t> buffer,
                                size_t num_bits, std::vector<uint32_t>* out) {
  out->clear();
  GapReader reader(buffer);
  uint64_t run = 0;
  size_t bit = 0;
  bool value = false;
  bool first = true;
  while (reader.ReadRun(&run)) {
    if (run == 0 && !first) return false;  // interior empty run
    first = false;
    if (run > num_bits - bit) return false;  // overshoots the universe
    if (value) {
      for (uint64_t i = 0; i < run; ++i) {
        out->push_back(static_cast<uint32_t>(bit + i));
      }
    }
    bit += run;
    value = !value;
    if (bit == num_bits && !reader.AtEnd()) return false;  // trailing bytes
  }
  if (reader.malformed()) return false;
  return bit == num_bits;  // reject undershoot
}

size_t GapCodec::EncodedSizeFromIndices(std::span<const uint32_t> indices,
                                        size_t num_bits) {
  size_t total = 0;
  size_t pos = 0;  // next unencoded bit position
  size_t i = 0;
  while (i < indices.size()) {
    // Zero run up to the next set bit.
    total += VarintSize(indices[i] - pos);
    // One run of consecutive indices.
    size_t run = 1;
    while (i + run < indices.size() &&
           indices[i + run] == indices[i] + run) {
      ++run;
    }
    total += VarintSize(run);
    pos = indices[i] + run;
    i += run;
  }
  if (pos < num_bits) total += VarintSize(num_bits - pos);
  return total;
}

}  // namespace sparqlsim::util
