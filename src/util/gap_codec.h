#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/bitvector.h"

namespace sparqlsim::util {

/// Streaming reader over a gap-length-encoded buffer (see GapCodec).
///
/// Every run length is LEB128-varint encoded; the reader validates as it
/// goes instead of trusting the buffer: a truncated varint (continuation
/// bit set at end of input) or a varint wider than 64 bits marks the
/// stream `malformed()` and stops it. Callers that stream untrusted or
/// at-rest bytes (CandidateSet, GapCodec::TryDecode) never index past the
/// span.
class GapReader {
 public:
  explicit GapReader(std::span<const uint8_t> buffer) : buffer_(buffer) {}

  /// Reads the next run length into `*run`. Returns false at a clean end
  /// of buffer or on malformed input — distinguish with malformed().
  bool ReadRun(uint64_t* run) {
    if (pos_ >= buffer_.size()) return false;
    uint64_t value = 0;
    unsigned shift = 0;
    while (true) {
      if (pos_ >= buffer_.size() || shift >= 64) {
        malformed_ = true;  // truncated varint, or one wider than 64 bits
        return false;
      }
      const uint8_t byte = buffer_[pos_++];
      if (shift == 63 && (byte & 0x7E) != 0) {
        malformed_ = true;  // high bits past 2^64
        return false;
      }
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *run = value;
    return true;
  }

  bool AtEnd() const { return pos_ >= buffer_.size(); }
  bool malformed() const { return malformed_; }

 private:
  std::span<const uint8_t> buffer_;
  size_t pos_ = 0;
  bool malformed_ = false;
};

/// Run-merging writer producing the canonical GapCodec byte stream: the
/// alternating run sequence always starts with a zero-run (possibly of
/// length 0) and never contains an interior zero-length run, because
/// adjacent same-value appends are merged before being flushed. Feeding
/// the writer the runs of a vector in order therefore reproduces
/// GapCodec::Encode byte for byte, which keeps compressed-form kernel
/// outputs directly comparable.
class GapWriter {
 public:
  /// Appends `run_len` bits of `value`; zero-length appends are ignored.
  void Append(bool value, uint64_t run_len) {
    if (run_len == 0) return;
    if (value == pending_value_) {
      pending_ += run_len;
      return;
    }
    Flush();
    pending_value_ = value;
    pending_ = run_len;
  }

  /// Total bits appended so far.
  uint64_t BitsWritten() const { return bits_written_ + pending_; }

  /// Flushes the trailing run and returns the encoded buffer.
  std::vector<uint8_t> Take() {
    if (pending_ > 0) Flush();
    return std::move(out_);
  }

 private:
  void Flush();

  std::vector<uint8_t> out_;
  bool pending_value_ = false;  // a stream must start with a zero-run
  uint64_t pending_ = 0;
  uint64_t bits_written_ = 0;
  bool emitted_any_ = false;
};

/// Gap-length (run-length) encoding of a bit vector.
///
/// The paper (Sect. 3.3) points out that bit-vector storage techniques such
/// as gap-length encoding make the memory footprint of adjacency matrices
/// depend on run structure rather than raw bit count. This codec stores a
/// bit vector as the sequence of alternating run lengths, starting with the
/// length of the initial zero-run (possibly 0), each length LEB128-varint
/// encoded. It backs the at-rest row storage statistics and the compressed
/// candidate-set representation (util::CandidateSet), whose kernels walk
/// the runs through GapReader/GapWriter without inflating.
class GapCodec {
 public:
  /// Encodes `bits` into a byte buffer (word-wise run extraction, not a
  /// per-bit scan).
  static std::vector<uint8_t> Encode(const BitVector& bits);

  /// Decodes a buffer produced by Encode. `num_bits` must match the
  /// original vector size; malformed input aborts (use TryDecode for
  /// untrusted bytes).
  static BitVector Decode(const std::vector<uint8_t>& buffer, size_t num_bits);

  /// Checked decode for untrusted input. Rejects (nullopt): truncated or
  /// over-wide varints, interior zero-length runs, run sums that overshoot
  /// or undershoot `num_bits`, and trailing bytes past the final run.
  static std::optional<BitVector> TryDecode(std::span<const uint8_t> buffer,
                                            size_t num_bits);

  /// Encoded size in bytes without materializing the buffer.
  static size_t EncodedSize(const BitVector& bits);

  /// Encoded size of a row given as sorted set-bit indices over a universe
  /// of `num_bits` — O(indices) instead of O(num_bits), which is what
  /// makes whole-database storage reports affordable.
  static size_t EncodedSizeFromIndices(std::span<const uint32_t> indices,
                                       size_t num_bits);

  /// Appends the canonical encoding of a row given as sorted, duplicate-free
  /// set-bit indices over a `num_bits` universe — byte-identical to
  /// Encode(BitVector with those bits set) but O(indices) instead of
  /// O(num_bits). This is the at-rest row writer of the SQSIMDB2 format.
  static void EncodeFromIndices(std::span<const uint32_t> indices,
                                size_t num_bits, std::vector<uint8_t>* out);

  /// Checked decode of a canonical buffer into sorted set-bit indices,
  /// appended to `*out`. Applies the same validation as TryDecode; returns
  /// false on malformed input (`*out` may then hold a partial prefix).
  static bool TryDecodeIndices(std::span<const uint8_t> buffer,
                               size_t num_bits, std::vector<uint32_t>* out);
};

}  // namespace sparqlsim::util
