#include "datagen/queries.h"

namespace sparqlsim::datagen {

std::vector<NamedQuery> LubmQueries() {
  return {
      // L0 — the cyclic advisor/course/teacher triangle of Fig. 6(a): low
      // predicate selectivity, large result, many fixpoint iterations.
      {"L0",
       "SELECT * WHERE { ?student <advisor> ?professor . "
       "?student <takesCourse> ?course . "
       "?professor <teacherOf> ?course . "
       "OPTIONAL { ?professor <emailAddress> ?email . } }"},
      // L1 — Fig. 6(b): publication with a student author and a professor
      // author affiliated with the same department, which belongs to the
      // university the student got their undergraduate degree from.
      {"L1",
       "SELECT * WHERE { ?publication a <Publication> . "
       "?publication <publicationAuthor> ?student . "
       "?publication <publicationAuthor> ?professor . "
       "?student <memberOf> ?department . "
       "?professor <worksFor> ?department . "
       "?department <subOrganizationOf> ?university . "
       "?student <undergraduateDegreeFrom> ?university . "
       "OPTIONAL { ?professor <emailAddress> ?email . } }"},
      // L2 — another cyclic triangle (worksFor/memberOf/advisor) with a
      // large result and an optional fan-out over courses.
      {"L2",
       "SELECT * WHERE { ?professor <worksFor> ?department . "
       "?student <memberOf> ?department . "
       "?student <advisor> ?professor . "
       "OPTIONAL { ?student <takesCourse> ?course . } }"},
      // L3 — constant-anchored, highly selective.
      {"L3",
       "SELECT * WHERE { ?x <worksFor> <U0/D0> . "
       "?x a <FullProfessor> . "
       "OPTIONAL { ?x <doctoralDegreeFrom> ?univ . } }"},
      // L4 — department heads of one university.
      {"L4",
       "SELECT * WHERE { ?x <headOf> ?d . "
       "?d <subOrganizationOf> <U0> . "
       "OPTIONAL { ?x <emailAddress> ?e . } }"},
      // L5 — advisees of the head of one department.
      {"L5",
       "SELECT * WHERE { ?s <advisor> ?p . "
       "?p <headOf> <U0/D0> . "
       "OPTIONAL { ?s <emailAddress> ?e . } }"},
  };
}

std::vector<NamedQuery> DbpediaQueries() {
  return {
      // D0 — films with directors, optional director birthplace.
      {"D0",
       "SELECT * WHERE { ?film a <Film> . ?film <director> ?d . "
       "OPTIONAL { ?d <birthPlace> ?city . } }"},
      // D1 — empty: only cities carry populationTotal, directors are
      // persons.
      {"D1",
       "SELECT * WHERE { ?x <director> ?y . ?y <populationTotal> ?p . "
       "OPTIONAL { ?y <birthPlace> ?c . } }"},
      // D2 — constant city anchor, selective.
      {"D2",
       "SELECT * WHERE { ?p <birthPlace> <City17> . ?p <spouse> ?q . "
       "OPTIONAL { ?q <almaMater> ?u . } }"},
      // D3 — bands, members, member birthplaces; optional country.
      {"D3",
       "SELECT * WHERE { ?b a <Band> . ?b <bandMember> ?m . "
       "?m <birthPlace> ?c . OPTIONAL { ?c <country> ?k . } }"},
      // D4 — very large: every person with birthplace and its country.
      {"D4",
       "SELECT * WHERE { ?p a <Person> . ?p <birthPlace> ?c . "
       "?c <country> ?k . OPTIONAL { ?p <almaMater> ?u . } }"},
      // D5 — star cast spouses, optional birthplace.
      {"D5",
       "SELECT * WHERE { ?f <starring> ?a . ?a <spouse> ?s . "
       "OPTIONAL { ?s <birthPlace> ?c . } }"},
  };
}

std::vector<NamedQuery> BenchmarkQueries() {
  return {
      // B0 — constant genre anchor, star around films.
      {"B0",
       "SELECT * WHERE { ?f <genre> <Genre0> . ?f <director> ?d . "
       "?d <birthPlace> ?c . }"},
      // B1 — large 2-chain: person -> city -> country.
      {"B1", "SELECT * WHERE { ?p <birthPlace> ?c . ?c <country> ?k . }"},
      // B2 — large 2-chain through starring.
      {"B2", "SELECT * WHERE { ?f <starring> ?a . ?a <birthPlace> ?c . }"},
      // B3 — cyclic: actor married to the film's director.
      {"B3",
       "SELECT * WHERE { ?f <director> ?d . ?f <starring> ?a . "
       "?a <spouse> ?d . }"},
      // B4 — empty: the constant does not exist in the database.
      {"B4", "SELECT * WHERE { ?x <director> <NoSuchFilm> . }"},
      // B5 — empty: cities do not direct films.
      {"B5",
       "SELECT * WHERE { ?x <populationTotal> ?y . ?x <director> ?z . }"},
      // B6 — alma mater chain.
      {"B6",
       "SELECT * WHERE { ?a <almaMater> ?u . ?u <locatedIn> ?c . }"},
      // B7 — constant employer.
      {"B7",
       "SELECT * WHERE { ?p <employer> <Company0> . ?p <birthPlace> ?c . }"},
      // B8 — triangle: spouses born in the same city.
      {"B8",
       "SELECT * WHERE { ?a <spouse> ?b . ?a <birthPlace> ?c . "
       "?b <birthPlace> ?c . }"},
      // B9 — albums of bands of one genre.
      {"B9",
       "SELECT * WHERE { ?album <artist> ?band . ?band <genre> <Genre3> . }"},
      // B10 — books by authors born in one country.
      {"B10",
       "SELECT * WHERE { ?book <author> ?w . ?w <birthPlace> ?c . "
       "?c <country> <Country0> . }"},
      // B11 — awarded films.
      {"B11", "SELECT * WHERE { ?f a <Film> . ?f <award> ?aw . }"},
      // B12 — founders and their universities.
      {"B12",
       "SELECT * WHERE { ?c <foundedBy> ?p . ?p <almaMater> ?u . }"},
      // B13 — 4-chain: film -> actor -> university -> city -> country.
      {"B13",
       "SELECT * WHERE { ?f <starring> ?a . ?a <almaMater> ?u . "
       "?u <locatedIn> ?c . ?c <country> ?k . }"},
      // B14 — large star: co-star pairs with genre.
      {"B14",
       "SELECT * WHERE { ?f <starring> ?a1 . ?f <starring> ?a2 . "
       "?f <genre> ?g . }"},
      // B15 — empty: sequels are films, films have no population.
      {"B15",
       "SELECT * WHERE { ?x <sequel_of> ?y . ?y <populationTotal> ?z . }"},
      // B16 — tiny: second-order sequels.
      {"B16",
       "SELECT * WHERE { ?f <sequel_of> ?g . ?g <sequel_of> ?h . }"},
      // B17 — large: typed actors with films and directors.
      {"B17",
       "SELECT * WHERE { ?p a <Actor> . ?f <starring> ?p . "
       "?f <director> ?d . }"},
      // B18 — constant birth city of directors.
      {"B18",
       "SELECT * WHERE { ?f <director> ?d . ?d <birthPlace> <City0> . "
       "?f <genre> ?g . }"},
      // B19 — band members' spouses' birthplaces.
      {"B19",
       "SELECT * WHERE { ?b <bandMember> ?m . ?m <spouse> ?s . "
       "?s <birthPlace> ?c . }"},
  };
}

}  // namespace sparqlsim::datagen
