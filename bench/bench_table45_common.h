#pragma once

// Shared driver for Tables 4 and 5 of the paper: query processing times on
// the full versus the pruned database, plus the combined pruning + query
// time, for one join-order policy (Table 4 = RDFox-like, Table 5 =
// Virtuoso-like).

#include <cstdio>

#include "bench/bench_common.h"
#include "engine/evaluator.h"
#include "sim/pruner.h"

namespace sparqlsim::bench {

inline void RunPrunedVsFull(const char* dataset_name,
                            const graph::GraphDatabase& db,
                            const std::vector<datagen::NamedQuery>& queries,
                            engine::JoinOrderPolicy policy) {
  sim::SparqlSimProcessor processor(&db);
  engine::Evaluator full_eval(&db, {policy});

  std::printf("\n[%s] %zu triples\n", dataset_name, db.NumTriples());
  std::printf("%-6s %12s %14s %22s %10s\n", "Query", "t_DB", "t_DB_pruned",
              "t_DB_pruned+t_SIM", "results");
  PrintRule(70);

  for (const auto& [id, text] : queries) {
    sparql::Query query = ParseOrDie(text);

    size_t full_rows = 0;
    double t_full = TimeAverage(
        [&] { full_rows = full_eval.Evaluate(query).NumRows(); });

    sim::PruneReport report;
    double t_sim = TimeAverage([&] { report = processor.Prune(query); });

    graph::GraphDatabase pruned = db.Restrict(report.kept_triples);
    engine::Evaluator pruned_eval(&pruned, {policy});
    size_t pruned_rows = 0;
    double t_pruned = TimeAverage(
        [&] { pruned_rows = pruned_eval.Evaluate(query).NumRows(); });

    // Soundness check: matches may never be lost. (For OPTIONAL queries a
    // pruned evaluation may legitimately contain extra rows — the paper's
    // overapproximation — but never fewer.)
    if (pruned_rows < full_rows) {
      std::fprintf(stderr,
                   "SOUNDNESS VIOLATION on %s: %zu rows pruned vs %zu full\n",
                   id.c_str(), pruned_rows, full_rows);
    }
    std::printf("%-6s %12.5f %14.5f %22.5f %10zu\n", id.c_str(), t_full,
                t_pruned, t_pruned + t_sim, full_rows);
  }
}

/// With `--db <file.gdb>` (see LoadDbOverride) all three workloads run
/// against the provided real database; otherwise the synthetic LUBM-like
/// and DBpedia-like generators are used as before.
inline int RunTable(const char* title, engine::JoinOrderPolicy policy,
                    int argc, char** argv) {
  std::printf("%s\n", title);
  std::optional<graph::GraphDatabase> override_db =
      LoadDbOverride(argc, argv);
  if (override_db) {
    RunPrunedVsFull("--db (L)", *override_db, datagen::LubmQueries(), policy);
    RunPrunedVsFull("--db (D)", *override_db, datagen::DbpediaQueries(),
                    policy);
    RunPrunedVsFull("--db (B)", *override_db, datagen::BenchmarkQueries(),
                    policy);
    return 0;
  }
  graph::GraphDatabase lubm = MakeBenchLubm();
  RunPrunedVsFull("LUBM-like", lubm, datagen::LubmQueries(), policy);
  graph::GraphDatabase dbp = MakeBenchDbpedia();
  RunPrunedVsFull("DBpedia-like (D)", dbp, datagen::DbpediaQueries(), policy);
  RunPrunedVsFull("DBpedia-like (B)", dbp, datagen::BenchmarkQueries(),
                  policy);
  return 0;
}

}  // namespace sparqlsim::bench
