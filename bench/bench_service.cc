// Throughput bench for the QueryService front end: a fixed mix of
// benchmark queries (with duplicates, so dedup and the solution cache get
// real work) is submitted concurrently at 1/2/4/... service workers, and
// the interesting numbers are queries/second, coalescing, and cache
// economics under a bounded LRU.
//
// Every report is checked bit-identical against a sequential, cache-free
// SimEngine::Prune of the same query — the service must never trade
// correctness for throughput. Set SPARQLSIM_BENCH_JSON=<path> to archive
// numbers as JSON (tools/run_benches.sh does).
//
// Knobs: SPARQLSIM_SERVICE_QUERIES (mix size, default 48),
//        SPARQLSIM_SERVICE_QUEUE_DEPTH (default 16),
//        SPARQLSIM_SERVICE_CACHE_CAPACITY (default 32, 0 = unbounded),
//        --db <file.gdb> / SPARQLSIM_DB for a real ingested database.

#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sim/query_service.h"
#include "sim/sim_engine.h"
#include "sparql/normalize.h"
#include "util/stopwatch.h"

namespace sparqlsim {
namespace {

/// The submission mix: every parseable benchmark query, cycled until
/// `count` entries. Cycling guarantees duplicates once count exceeds the
/// distinct pool — the service's dedup/cache workload.
std::vector<sparql::Query> MakeMix(size_t count) {
  std::vector<sparql::Query> pool;
  for (const auto& [id, text] : datagen::BenchmarkQueries()) {
    sparql::Query q = bench::ParseOrDie(text);
    if (q.where->NumTriples() > 0) pool.push_back(std::move(q));
  }
  for (const auto& [id, text] : datagen::DbpediaQueries()) {
    sparql::Query q = bench::ParseOrDie(text);
    if (q.where->NumTriples() > 0) pool.push_back(std::move(q));
  }
  std::vector<sparql::Query> mix;
  mix.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    mix.push_back(pool[i % pool.size()].Clone());
  }
  return mix;
}

struct Sample {
  size_t workers = 0;
  double seconds = 0;
  double qps = 0;
  size_t executed = 0;
  size_t coalesced = 0;
  size_t solution_hits = 0;
  size_t lru_evictions = 0;
};

int Run(int argc, char** argv) {
  std::printf("QueryService throughput (bounded admission + LRU cache)\n");
  std::optional<graph::GraphDatabase> override_db =
      bench::LoadDbOverride(argc, argv);
  graph::GraphDatabase db =
      override_db ? std::move(*override_db) : bench::MakeBenchDbpedia();

  const size_t count = bench::EnvSize("SPARQLSIM_SERVICE_QUERIES", 48);
  const size_t queue_depth =
      bench::EnvSize("SPARQLSIM_SERVICE_QUEUE_DEPTH", 16);
  const size_t cache_capacity =
      bench::EnvSize("SPARQLSIM_SERVICE_CACHE_CAPACITY", 32);
  std::vector<sparql::Query> mix = MakeMix(count);

  // Sequential ground truth, keyed by canonical pattern (the mix repeats
  // queries; one reference solve per distinct pattern).
  sim::SolverOptions plain;
  plain.num_threads = 1;
  plain.cache_sois = false;
  plain.cache_solutions = false;
  sim::SimEngine reference_engine(&db, plain);
  std::map<std::string, sim::PruneReport> reference;
  for (const sparql::Query& q : mix) {
    std::string key = sparql::CanonicalPatternKey(*q.where);
    if (!reference.count(key)) {
      reference.emplace(key, reference_engine.Prune(q));
    }
  }

  std::vector<size_t> worker_counts = {1, 2, 4};
  size_t hw = util::ThreadPool::ResolveThreadCount(0);
  if (hw > 4) worker_counts.push_back(hw);

  std::printf("  mix: %zu submissions, %zu distinct patterns, queue depth "
              "%zu, cache capacity %zu\n",
              mix.size(), reference.size(), queue_depth, cache_capacity);
  std::printf("  %-8s %10s %10s %9s %10s %10s %9s\n", "workers", "time(s)",
              "q/s", "executed", "coalesced", "sol.hits", "lru.evict");

  std::vector<Sample> samples;
  for (size_t workers : worker_counts) {
    sim::QueryServiceOptions options;
    options.num_workers = workers;
    options.queue_depth = queue_depth;
    options.cache_capacity = cache_capacity;
    sim::QueryService service(&db, options);

    util::Stopwatch watch;
    std::vector<std::future<sim::PruneReport>> futures;
    futures.reserve(mix.size());
    for (const sparql::Query& q : mix) futures.push_back(service.Submit(q));
    std::vector<sim::PruneReport> reports;
    reports.reserve(mix.size());
    for (auto& f : futures) reports.push_back(f.get());
    double seconds = watch.ElapsedSeconds();

    // Correctness gate: concurrent == sequential, bit for bit.
    for (size_t i = 0; i < mix.size(); ++i) {
      const sim::PruneReport& want =
          reference.at(sparql::CanonicalPatternKey(*mix[i].where));
      if (reports[i].kept_triples != want.kept_triples ||
          reports[i].var_candidates != want.var_candidates) {
        std::fprintf(stderr,
                     "FATAL: query %zu differs from sequential at %zu "
                     "workers\n",
                     i, workers);
        std::abort();
      }
    }

    sim::QueryService::Stats stats = service.stats();
    Sample s;
    s.workers = workers;
    s.seconds = seconds;
    s.qps = seconds > 0 ? static_cast<double>(mix.size()) / seconds : 0.0;
    s.executed = stats.executed;
    s.coalesced = stats.coalesced;
    s.solution_hits = stats.cache.solution_hits;
    s.lru_evictions =
        stats.cache.soi_evictions + stats.cache.solution_evictions;
    samples.push_back(s);
    std::printf("  %-8zu %10.5f %10.1f %9zu %10zu %10zu %9zu\n", workers,
                seconds, s.qps, s.executed, s.coalesced, s.solution_hits,
                s.lru_evictions);
  }

  FILE* out = stdout;
  const char* json_path = std::getenv("SPARQLSIM_BENCH_JSON");
  if (json_path != nullptr) {
    out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  std::fprintf(out, "{\n  \"bench\": \"service\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"mix\": {\"submissions\": %zu, \"distinct\": %zu, "
               "\"queue_depth\": %zu, \"cache_capacity\": %zu},\n",
               mix.size(), reference.size(), queue_depth, cache_capacity);
  std::fprintf(out, "  \"samples\": [");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "%s\n    {\"workers\": %zu, \"seconds\": %.6f, "
                 "\"qps\": %.2f, \"executed\": %zu, \"coalesced\": %zu, "
                 "\"solution_hits\": %zu, \"lru_evictions\": %zu}",
                 i == 0 ? "" : ",", s.workers, s.seconds, s.qps, s.executed,
                 s.coalesced, s.solution_hits, s.lru_evictions);
  }
  std::fprintf(out, "\n  ]\n}\n");
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "[bench] JSON written to %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace sparqlsim

int main(int argc, char** argv) { return sparqlsim::Run(argc, argv); }
