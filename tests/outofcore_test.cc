// Out-of-core tier suite. A database opened from a v1 file, a v2 file
// opened eagerly, and a v2 file opened lazily (mmap + per-predicate
// materialization on first touch) must be indistinguishable to the
// engine: bit-identical solutions, prune reports, and fixpoint
// trajectories across thread counts, shard counts, and kernel modes.
// On top of that interchangeability, the suite pins the tier's own
// contracts: a cold lazy open materializes nothing until a query
// touches it, untouched predicates stay on disk, the resident-byte
// budget triggers eviction (and re-faulting stays correct), pins block
// eviction for the duration of a solve, and concurrent readers may
// fault and evict the same slots freely (the racing case runs under
// TSan in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/movies.h"
#include "datagen/random_graphs.h"
#include "graph/binary_io.h"
#include "graph/graph_database.h"
#include "sim/sim_engine.h"
#include "sim/soi.h"
#include "sim/validate.h"
#include "sparql/parser.h"
#include "util/bitvector.h"

namespace sparqlsim::sim {
namespace {

using graph::BinaryIo;
using graph::GraphDatabase;

// Writes `db` in both formats; returns the two paths.
std::pair<std::string, std::string> WriteBothFormats(const GraphDatabase& db,
                                                     const std::string& tag) {
  std::string v1 = "/tmp/sparqlsim_outofcore_" + tag + "_v1.gdb";
  std::string v2 = "/tmp/sparqlsim_outofcore_" + tag + "_v2.gdb";
  EXPECT_TRUE(BinaryIo::SaveFile(db, v1).ok());
  EXPECT_TRUE(BinaryIo::SaveV2File(db, v2).ok());
  return {v1, v2};
}

GraphDatabase OpenOrDie(const std::string& path,
                        const BinaryIo::LoadOptions& options = {}) {
  auto loaded = BinaryIo::LoadFile(path, options);
  EXPECT_TRUE(loaded.ok()) << path << ": " << loaded.error_message();
  return std::move(loaded).value();
}

void ExpectSameTrajectory(const SolveStats& actual, const SolveStats& want,
                          const std::string& context) {
  EXPECT_EQ(actual.rounds, want.rounds) << context;
  EXPECT_EQ(actual.evaluations, want.evaluations) << context;
  EXPECT_EQ(actual.updates, want.updates) << context;
  EXPECT_EQ(actual.row_evals, want.row_evals) << context;
  EXPECT_EQ(actual.col_evals, want.col_evals) << context;
  EXPECT_EQ(actual.delta_evals, want.delta_evals) << context;
  EXPECT_EQ(actual.full_evals, want.full_evals) << context;
  EXPECT_EQ(actual.acc_rebuilds, want.acc_rebuilds) << context;
  EXPECT_EQ(actual.cols_cleared, want.cols_cleared) << context;
  EXPECT_EQ(actual.max_round_width, want.max_round_width) << context;
}

// ---------------------------------------------------------------------------
// Interchangeability: v1 / v2-eager / v2-lazy across the solver matrix
// ---------------------------------------------------------------------------

TEST(OutOfCoreDifferentialTest, BackingNeverChangesSolveResults) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 150;
  config.num_edges = 600;
  config.num_labels = 3;
  config.seed = 11;
  GraphDatabase built = datagen::MakeRandomDatabase(config);
  auto [v1_path, v2_path] = WriteBothFormats(built, "diff");

  graph::Graph pattern = datagen::MakeRandomPattern(6, 4, 3, 2011);
  Soi soi = BuildSoiFromGraph(pattern);

  // Canonical solve on the in-memory database.
  Solution reference;
  {
    SimEngine engine(&built, SolverOptions{});
    reference = engine.Solve(soi);
    std::string why;
    ASSERT_TRUE(SatisfiesSoi(soi, built, reference.candidates, &why)) << why;
  }

  BinaryIo::LoadOptions eager;
  eager.eager = true;
  BinaryIo::LoadOptions lazy_tight;
  lazy_tight.resident_budget_bytes = 1;  // evict-everything pressure

  struct Variant {
    const char* name;
    GraphDatabase db;
  };
  Variant variants[] = {
      {"v1", OpenOrDie(v1_path)},
      {"v2-eager", OpenOrDie(v2_path, eager)},
      {"v2-lazy", OpenOrDie(v2_path)},
      {"v2-lazy-tight", OpenOrDie(v2_path, lazy_tight)},
  };

  for (Variant& variant : variants) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      for (size_t shards : {size_t{1}, size_t{4}}) {
        for (auto kernel : {SolverOptions::KernelMode::kAuto,
                            SolverOptions::KernelMode::kDense,
                            SolverOptions::KernelMode::kCompressed}) {
          SolverOptions options;
          options.num_threads = threads;
          options.num_shards = shards;
          options.kernel_mode = kernel;
          SimEngine engine(&variant.db, options);
          Solution solution = engine.Solve(soi);
          const std::string context =
              std::string(variant.name) + ", " + std::to_string(threads) +
              " threads, " + std::to_string(shards) + " shards, kernel " +
              std::to_string(static_cast<int>(kernel));
          ASSERT_EQ(solution.candidates.size(), reference.candidates.size())
              << context;
          for (size_t v = 0; v < reference.candidates.size(); ++v) {
            EXPECT_EQ(solution.candidates[v], reference.candidates[v])
                << context << ", var " << v;
          }
          ExpectSameTrajectory(solution.stats, reference.stats, context);
        }
      }
    }
  }
}

TEST(OutOfCoreDifferentialTest, PruneReportsIdenticalAcrossBackings) {
  GraphDatabase built = datagen::MakeMovieDatabase();
  auto [v1_path, v2_path] = WriteBothFormats(built, "prune");
  auto parsed = sparql::Parser::Parse(
      "SELECT * WHERE { { ?d <directed> ?m . } UNION "
      "{ ?m <genre> ?g . ?d <directed> ?m . } UNION "
      "{ ?d <directed> ?m . OPTIONAL { ?d <worked_with> ?c . } } }");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  sparql::Query query = std::move(parsed).value();

  BinaryIo::LoadOptions eager;
  eager.eager = true;
  GraphDatabase v1 = OpenOrDie(v1_path);
  GraphDatabase v2_eager = OpenOrDie(v2_path, eager);
  GraphDatabase v2_lazy = OpenOrDie(v2_path);

  PruneReport reference;
  bool have_reference = false;
  for (GraphDatabase* db : {&v1, &v2_eager, &v2_lazy}) {
    SolverOptions options;
    options.num_threads = 2;
    options.num_shards = 2;
    SimEngine engine(db, options);
    PruneReport report = engine.Prune(query);
    if (!have_reference) {
      reference = std::move(report);
      have_reference = true;
      EXPECT_FALSE(reference.kept_triples.empty());
      continue;
    }
    EXPECT_EQ(report.kept_triples, reference.kept_triples);
    ASSERT_EQ(report.var_candidates.size(), reference.var_candidates.size());
    for (const auto& [var, bits] : reference.var_candidates) {
      auto it = report.var_candidates.find(var);
      ASSERT_NE(it, report.var_candidates.end()) << "?" << var;
      EXPECT_EQ(it->second, bits) << "?" << var;
    }
    ExpectSameTrajectory(report.stats, reference.stats, "prune");
  }
}

// ---------------------------------------------------------------------------
// Laziness: cold opens materialize nothing; queries touch only their
// predicates
// ---------------------------------------------------------------------------

TEST(OutOfCoreLazinessTest, ColdOpenMaterializesNothing) {
  GraphDatabase built = datagen::MakeMovieDatabase();
  auto [v1_path, v2_path] = WriteBothFormats(built, "cold");
  (void)v1_path;

  GraphDatabase db = OpenOrDie(v2_path);
  ASSERT_TRUE(db.HasBacking());
  graph::BackingStats stats = db.backing_stats();
  EXPECT_EQ(stats.predicates, built.NumPredicates());
  EXPECT_EQ(stats.materializations, 0u);
  EXPECT_EQ(stats.resident, 0u);

  // Metadata must come from the directory, not from decoding blocks.
  EXPECT_EQ(db.NumTriples(), built.NumTriples());
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    EXPECT_EQ(db.PredicateCardinality(p), built.PredicateCardinality(p));
  }
  EXPECT_EQ(db.backing_stats().materializations, 0u);
}

TEST(OutOfCoreLazinessTest, QueriesOnlyMaterializeTouchedPredicates) {
  GraphDatabase built = datagen::MakeMovieDatabase();
  ASSERT_GE(built.NumPredicates(), 3u);
  auto [v1_path, v2_path] = WriteBothFormats(built, "touch");
  (void)v1_path;

  GraphDatabase db = OpenOrDie(v2_path);
  auto parsed =
      sparql::Parser::Parse("SELECT * WHERE { ?d <directed> ?m . }");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  SimEngine engine(&db, SolverOptions{});
  PruneReport report = engine.Prune(parsed.value());
  EXPECT_FALSE(report.kept_triples.empty());

  graph::BackingStats stats = db.backing_stats();
  EXPECT_GT(stats.materializations, 0u);
  EXPECT_LT(stats.materializations, stats.predicates)
      << "a single-predicate query materialized the whole database";
  const uint32_t directed = *built.predicates().Lookup("directed");
  EXPECT_TRUE(db.PredicateResident(directed));
  size_t resident = 0;
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    resident += db.PredicateResident(p) ? 1u : 0u;
  }
  EXPECT_EQ(resident, stats.resident);
  EXPECT_LT(resident, static_cast<size_t>(db.NumPredicates()));
}

// ---------------------------------------------------------------------------
// Eviction: the budget holds once pins drop, and re-faulting is correct
// ---------------------------------------------------------------------------

TEST(OutOfCoreEvictionTest, BudgetEvictsAndRefaultsCorrectly) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 200;
  config.num_edges = 900;
  config.num_labels = 6;
  config.seed = 4;
  GraphDatabase built = datagen::MakeRandomDatabase(config);
  auto [v1_path, v2_path] = WriteBothFormats(built, "evict");
  (void)v1_path;

  BinaryIo::LoadOptions tight;
  tight.resident_budget_bytes = 1;  // room for at most the pinned slab
  GraphDatabase db = OpenOrDie(v2_path, tight);
  ASSERT_TRUE(db.HasBacking());
  EXPECT_EQ(db.backing_stats().budget_bytes, 1u);

  // Touch every predicate twice; with a 1-byte budget each unpinned slab
  // must be evicted, and the second pass re-faults it.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
      EXPECT_EQ(db.Forward(p).Nnz(), built.Forward(p).Nnz())
          << "pass " << pass << " predicate " << p;
    }
  }
  graph::BackingStats stats = db.backing_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.materializations, static_cast<size_t>(db.NumPredicates()))
      << "second pass should have re-faulted evicted predicates";
  EXPECT_LE(stats.resident, 1u);

  // Lifting the budget stops eviction; everything can stay resident.
  db.SetResidentBudget(0);
  for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
    (void)db.Forward(p).Nnz();
  }
  EXPECT_EQ(db.backing_stats().resident,
            static_cast<size_t>(db.NumPredicates()));
}

TEST(OutOfCoreEvictionTest, PinsDeferEvictionUntilReleased) {
  GraphDatabase built = datagen::MakeMovieDatabase();
  auto [v1_path, v2_path] = WriteBothFormats(built, "pin");
  (void)v1_path;

  GraphDatabase db = OpenOrDie(v2_path);
  {
    graph::ResidencyPin pin = db.PinResidency();
    for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
      (void)db.Forward(p).Nnz();
    }
    // A pinned database ignores the budget (enforcement is deferred)...
    db.SetResidentBudget(1);
    EXPECT_EQ(db.backing_stats().resident,
              static_cast<size_t>(db.NumPredicates()));
  }
  // ...and the deferred enforcement runs at the last unpin.
  EXPECT_LE(db.backing_stats().resident, 1u);
  EXPECT_GT(db.backing_stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: racing faults and evictions (TSan-checked in CI)
// ---------------------------------------------------------------------------

TEST(OutOfCoreConcurrencyTest, RacingReadersFaultAndEvictSafely) {
  datagen::RandomGraphConfig config;
  config.num_nodes = 120;
  config.num_edges = 500;
  config.num_labels = 4;
  config.seed = 23;
  GraphDatabase built = datagen::MakeRandomDatabase(config);
  auto [v1_path, v2_path] = WriteBothFormats(built, "race");
  (void)v1_path;

  BinaryIo::LoadOptions tight;
  tight.resident_budget_bytes = 1;
  GraphDatabase db = OpenOrDie(v2_path, tight);

  graph::Graph pattern = datagen::MakeRandomPattern(5, 3, 4, 99);
  Soi soi = BuildSoiFromGraph(pattern);
  Solution reference;
  {
    SimEngine engine(&built, SolverOptions{});
    reference = engine.Solve(soi);
  }

  std::vector<std::thread> workers;
  std::vector<int> mismatches(8, 0);
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        SolverOptions options;
        options.num_threads = 1;
        SimEngine engine(&db, options);
        Solution solution = engine.Solve(soi);
        if (solution.candidates != reference.candidates) ++mismatches[t];
        // Raw matrix reads happen while other threads evict; like any
        // direct matrix walk on an out-of-core database they must hold a
        // residency pin, which defers eviction past the reads.
        auto pin = db.PinResidency();
        for (uint32_t p = 0; p < db.NumPredicates(); ++p) {
          if (db.Forward(p).Nnz() != built.Forward(p).Nnz()) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace sparqlsim::sim
